"""R005 — attributes written under a lock are written *only* under it."""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..base import Rule, SourceFile, Violation, self_attribute

#: Method names whose call mutates the receiver in place.
MUTATING_METHODS = frozenset({
    "add", "append", "extend", "insert", "remove", "discard", "pop",
    "popitem", "clear", "update", "setdefault", "move_to_end", "put",
    "subtract", "sort", "reverse",
})

#: Methods that establish object state before it is shared — mutations
#: here are single-threaded by construction and exempt.
CONSTRUCTION_METHODS = frozenset({"__init__", "__new__", "__post_init__"})


def _lock_name(item: ast.withitem) -> Optional[str]:
    """``"X"`` when the with-item is ``self.X`` and X looks like a lock."""
    expr = item.context_expr
    attr = self_attribute(expr)
    if attr is not None and "lock" in attr.lower():
        return attr
    return None


@dataclass
class _Mutation:
    """One write to ``self.<attr>`` with the lock context it happened in."""

    attr: str
    node: ast.AST
    method: str
    locks: Tuple[str, ...]  # lock attrs held lexically at the write
    describe: str


@dataclass
class _MethodFacts:
    """Per-method summary: mutations, and self-calls with their lock context."""

    name: str
    mutations: List[_Mutation] = field(default_factory=list)
    #: (callee method name, locks held at the call site)
    calls: List[Tuple[str, Tuple[str, ...]]] = field(default_factory=list)


class _MethodVisitor(ast.NodeVisitor):
    """Collect mutations and self-calls of one method, tracking lock nesting."""

    def __init__(self, method: str) -> None:
        self.method = method
        self.facts = _MethodFacts(method)
        self._locks: List[str] = []

    # -- lock scopes ------------------------------------------------------

    def visit_With(self, node: ast.With) -> None:
        names = [n for n in (_lock_name(item) for item in node.items) if n]
        self._locks.extend(names)
        for stmt in node.body:
            self.visit(stmt)
        for _ in names:
            self._locks.pop()
        # items' context expressions may contain calls worth tracking
        for item in node.items:
            self.visit(item.context_expr)

    # -- nested defs get their own (conservative: same-lock) context ------

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self.generic_visit(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self.generic_visit(node)

    # -- mutations --------------------------------------------------------

    def _record(self, attr: str, node: ast.AST, describe: str) -> None:
        self.facts.mutations.append(_Mutation(
            attr=attr,
            node=node,
            method=self.method,
            locks=tuple(self._locks),
            describe=describe,
        ))

    def _check_target(self, target: ast.AST, node: ast.AST, verb: str) -> None:
        attr = self_attribute(target)
        if attr is not None:
            self._record(attr, node, f"{verb} of `self.{attr}`")
        elif isinstance(target, ast.Subscript):
            attr = self_attribute(target.value)
            if attr is not None:
                self._record(attr, node, f"item {verb} on `self.{attr}`")
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._check_target(element, node, verb)

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._check_target(target, node, "assignment")
        self.visit(node.value)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None:
            self._check_target(node.target, node, "assignment")
            self.visit(node.value)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._check_target(node.target, node, "augmented assignment")
        self.visit(node.value)

    def visit_Delete(self, node: ast.Delete) -> None:
        for target in node.targets:
            self._check_target(target, node, "deletion")

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute):
            receiver_attr = self_attribute(func.value)
            if receiver_attr is not None and func.attr in MUTATING_METHODS:
                self._record(
                    receiver_attr, node,
                    f"mutating call `self.{receiver_attr}.{func.attr}(...)`",
                )
            callee = self_attribute(func)
            if callee is not None:
                self.facts.calls.append((callee, tuple(self._locks)))
        self.generic_visit(node)

    def visit_Attribute(self, node: ast.Attribute) -> None:
        # A bare `self.method` reference handed somewhere (e.g. a callback
        # passed while holding the lock) counts as a call in that context.
        if isinstance(node.ctx, ast.Load):
            attr = self_attribute(node)
            if attr is not None:
                self.facts.calls.append((attr, tuple(self._locks)))
        self.generic_visit(node)


class LockDisciplineRule(Rule):
    """Attributes written under ``self._lock`` are never written outside it.

    If *any* method writes ``self.x`` inside ``with self._lock:``, the
    class has declared ``x`` to be lock-protected shared state — a write
    to it anywhere else in the class without that lock is a race window
    (half-applied mutations become visible to the locked readers).  This
    is exactly the discipline the journal's probe/mutation serialization
    and the service's stats counters rely on, and the surface the
    ROADMAP's process-parallel scatter-gather will multiply.

    The analysis is per class, flow-insensitive, and propagates through
    private helpers: a method only ever invoked (or referenced) while the
    lock is held — e.g. ``_swap_base`` called from ``compact``'s locked
    region — inherits the lock context transitively, so helpers don't
    need renaming or re-locking.  ``__init__``/``__post_init__``/``__new__``
    are exempt (state is not yet shared during construction).  Reads are
    out of scope — the rule polices writers, the side that tears state.
    """

    id = "R005"
    title = "lock-guarded attribute mutated outside its lock"

    def check(self, source: SourceFile) -> List[Violation]:
        violations: List[Violation] = []
        for node in ast.walk(source.tree):
            if isinstance(node, ast.ClassDef):
                violations.extend(self._check_class(source, node))
        return violations

    def _check_class(
        self, source: SourceFile, cls: ast.ClassDef
    ) -> List[Violation]:
        methods: Dict[str, _MethodFacts] = {}
        for stmt in cls.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                visitor = _MethodVisitor(stmt.name)
                for inner in stmt.body:
                    visitor.visit(inner)
                methods[stmt.name] = visitor.facts

        # Pass 1: which methods are *always* entered with some lock held?
        # A method qualifies when every self-call/reference to it happens
        # inside a lock region (directly, or from another qualifying
        # method) and at least one such reference exists.
        held: Dict[str, Set[str]] = {}  # method -> locks guaranteed held
        changed = True
        while changed:
            changed = False
            for name in methods:
                if name in CONSTRUCTION_METHODS:
                    continue
                call_sites: List[Set[str]] = []
                for facts in methods.values():
                    for callee, locks in facts.calls:
                        if callee != name:
                            continue
                        site = set(locks)
                        if facts.name in held:
                            site |= held[facts.name]
                        call_sites.append(site)
                if not call_sites:
                    continue
                common = set.intersection(*call_sites)
                if common and held.get(name) != common:
                    held[name] = common
                    changed = True
                elif not common and name in held:
                    del held[name]
                    changed = True

        def effective_locks(mutation: _Mutation) -> Set[str]:
            locks = set(mutation.locks)
            locks |= held.get(mutation.method, set())
            return locks

        # Pass 2: the guarded set — attrs written with some lock held.
        guarded: Dict[str, Set[str]] = {}  # attr -> locks it was written under
        for facts in methods.values():
            if facts.name in CONSTRUCTION_METHODS:
                continue
            for mutation in facts.mutations:
                locks = effective_locks(mutation)
                if locks:
                    guarded.setdefault(mutation.attr, set()).update(locks)

        # Never treat the locks themselves as guarded state.
        for attr in list(guarded):
            if "lock" in attr.lower():
                del guarded[attr]

        # Pass 3: flag unprotected writes to guarded attrs.
        violations: List[Violation] = []
        for facts in methods.values():
            if facts.name in CONSTRUCTION_METHODS:
                continue
            for mutation in facts.mutations:
                if mutation.attr not in guarded:
                    continue
                if effective_locks(mutation) & guarded[mutation.attr]:
                    continue
                locks = " / ".join(sorted(guarded[mutation.attr]))
                violations.append(self.violation(
                    source, mutation.node,
                    f"{mutation.describe} in `{cls.name}.{facts.name}` "
                    f"without holding `self.{locks}`, but the attribute is "
                    "lock-guarded elsewhere in this class",
                ))
        return violations
