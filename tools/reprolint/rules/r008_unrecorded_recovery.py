"""R008 — recovery paths must record the failures they absorb."""

from __future__ import annotations

import ast
from typing import List

from ..base import Rule, SourceFile, Violation

#: The packages whose recovery paths this rule patrols: the storage layer
#: (shard loads, journal replay, scrubbing), the serving front door, and
#: the fault-injection/health machinery itself.
RECOVERY_PACKAGES = ("repro.index", "repro.serve", "repro.faults")

#: Call names that count as recording the absorbed failure to a health,
#: counter, or error seam.  Matched on the called name's final segment,
#: so both ``tracker.record_failure(...)`` and a local ``record_issue(...)``
#: qualify.
RECORDING_NAMES = frozenset({
    "record_failure",    # HealthTracker: failure-domain bookkeeping
    "record_success",    # HealthTracker: heal-path bookkeeping
    "record_issue",      # scrub: structured defect reporting
    "set_exception",     # Future: the failure travels to the waiter
    "count_refusal",     # serve counters: refusal taxonomy
    "reject",            # ServerCounters: rejection taxonomy
    "mark_degraded",     # ExecutionContext: degradation flag + reason
    "fail",              # binfmt._Reader: uniform path:offset ValueError
})


def _handler_records(handler: ast.ExceptHandler) -> bool:
    for node in ast.walk(handler):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        name = None
        if isinstance(func, ast.Name):
            name = func.id
        elif isinstance(func, ast.Attribute):
            name = func.attr
        if name in RECORDING_NAMES:
            return True
    return False


def _reraises(handler: ast.ExceptHandler) -> bool:
    return any(
        isinstance(node, ast.Raise) for node in ast.walk(handler)
    )


class UnrecordedRecoveryRule(Rule):
    """Recovery paths in ``repro.index``/``repro.serve``/``repro.faults``
    must record every failure they absorb.

    These packages are exactly where this PR's robustness machinery
    lives: shard failure domains, partial scatter-gather, journal
    replay, the serving front door, and offline scrubbing.  Their value
    rests on one property — **no failure is silent**: an absorbed
    exception either heals (and the attempt was counted), degrades the
    answer (and the coverage record says so), or surfaces as a
    structured report.  An ``except`` that merely swallows breaks that
    chain: the shard looks healthy, the coverage reads 1.0, and the
    answer is silently wrong — the precise failure mode the chaos suite
    exists to rule out.  Every handler here must re-raise, or call a
    recording seam (``record_failure``/``record_success``,
    ``record_issue``, ``set_exception``, ``count_refusal``/``reject``,
    ``mark_degraded``, the binfmt reader's ``fail``), or carry a
    ``reprolint: disable=R008`` comment whose reason explains why
    silence is correct there.
    """

    id = "R008"
    title = "except clause absorbs a failure without recording it"

    def check(self, source: SourceFile) -> List[Violation]:
        if not source.module.startswith(RECOVERY_PACKAGES):
            return []
        violations: List[Violation] = []
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if _reraises(node) or _handler_records(node):
                continue
            violations.append(self.violation(
                source, node,
                "except clause absorbs a failure without recording it to a "
                "health/counter seam (record_failure, record_issue, "
                "count_refusal, ...); record it, re-raise, or disable with "
                "a reasoned comment",
            ))
        return violations
