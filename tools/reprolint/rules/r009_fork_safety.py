"""R009 — fork-unsafe state must not cross a process-pool boundary."""

from __future__ import annotations

import ast
from typing import List, Set

from ..base import Rule, SourceFile, Violation, call_name

#: Constructors whose products are meaningless (or dangerous) in a child
#: process: lock family, mmap handles, sockets, open file objects.  A
#: name assigned from one of these must never appear in ``initargs=`` or
#: a ``submit(...)`` argument list.
FORK_UNSAFE_BUILDERS = frozenset({
    "Lock", "RLock", "Condition", "Semaphore", "BoundedSemaphore",
    "Event", "Barrier", "mmap", "socket", "open",
})


def _unsafe_names(tree: ast.Module) -> Set[str]:
    """Names bound anywhere in the file to a fork-unsafe builder's result."""
    names: Set[str] = set()
    for node in ast.walk(tree):
        if not isinstance(node, (ast.Assign, ast.AnnAssign)):
            continue
        value = node.value
        if value is None or call_name(value) not in FORK_UNSAFE_BUILDERS:
            continue
        targets = node.targets if isinstance(node, ast.Assign) else [node.target]
        for target in targets:
            if isinstance(target, ast.Name):
                names.add(target.id)
    return names


def _pool_bindings(tree: ast.Module) -> Set[str]:
    """Names (and ``self.<attr>`` attrs) assigned a ``ProcessPoolExecutor``."""
    bound: Set[str] = set()
    for node in ast.walk(tree):
        if not isinstance(node, ast.Assign):
            continue
        if call_name(node.value) != "ProcessPoolExecutor":
            continue
        for target in node.targets:
            if isinstance(target, ast.Name):
                bound.add(target.id)
            elif isinstance(target, ast.Attribute):
                bound.add(target.attr)
    return bound


def _is_self(node: ast.AST) -> bool:
    return isinstance(node, ast.Name) and node.id == "self"


def _is_self_attr(node: ast.AST) -> bool:
    return isinstance(node, ast.Attribute) and _is_self(node.value)


class ForkSafetyRule(Rule):
    """Everything crossing a process-pool boundary must be spawn-safe.

    The process scatter pool (:mod:`repro.index.procpool`) exists so a
    query can fan out across cores, and its whole correctness story
    rests on what travels over IPC: worker state is rebuilt *in* the
    worker from primitives (a corpus path, shard ordinals, term lists,
    explicit idf floats), never shipped from the parent.  Shipping a
    bound method, a lambda, ``self``, or a handle-holding object (lock,
    mmap, socket, open file) either fails to pickle outright, or —
    worse — pickles a copy whose liveness is a lie in the child (a
    "held" lock nobody holds, an mmap of a closed fd).  In files that
    build a ``ProcessPoolExecutor``, this rule flags ``initializer=``
    bound methods/lambdas, ``initargs=`` entries that are ``self``,
    lambdas, or lock/mmap/socket/file-bound names, and ``submit(...)``
    calls whose callable is a lambda or ``self``-bound method or whose
    arguments carry the same fork-unsafe state.  Pass module-level
    functions and plain data; let each worker open its own resources.
    """

    id = "R009"
    title = "fork-unsafe state crosses a process-pool boundary"

    def check(self, source: SourceFile) -> List[Violation]:
        if "ProcessPoolExecutor" not in source.text:
            return []
        unsafe = _unsafe_names(source.tree)
        pools = _pool_bindings(source.tree)
        violations: List[Violation] = []

        def check_payload(node: ast.AST, where: str) -> None:
            if isinstance(node, ast.Lambda):
                violations.append(self.violation(
                    source, node,
                    f"lambda in {where} cannot pickle; pass a "
                    "module-level function",
                ))
            elif _is_self(node):
                violations.append(self.violation(
                    source, node,
                    f"'self' in {where} drags the whole parent object "
                    "(locks, executors, mmaps) across the process "
                    "boundary; pass plain data and rebuild in the worker",
                ))
            elif isinstance(node, ast.Name) and node.id in unsafe:
                violations.append(self.violation(
                    source, node,
                    f"{node.id!r} holds a lock/mmap/socket/file handle; "
                    f"a pickled copy in {where} is dead state in the "
                    "child — let the worker open its own",
                ))
            elif call_name(node) in FORK_UNSAFE_BUILDERS:
                violations.append(self.violation(
                    source, node,
                    f"{call_name(node)}() result in {where} is a live "
                    "handle; it does not survive the process boundary",
                ))

        for node in ast.walk(source.tree):
            if not isinstance(node, ast.Call):
                continue
            if call_name(node) == "ProcessPoolExecutor":
                for kw in node.keywords:
                    if kw.arg == "initializer":
                        if isinstance(kw.value, ast.Lambda) or _is_self_attr(
                            kw.value
                        ):
                            violations.append(self.violation(
                                source, kw.value,
                                "initializer= must be a module-level "
                                "function (bound methods/lambdas pickle "
                                "the instance or not at all)",
                            ))
                    elif kw.arg == "initargs" and isinstance(
                        kw.value, (ast.Tuple, ast.List)
                    ):
                        for element in kw.value.elts:
                            check_payload(element, "initargs=")
                continue
            func = node.func
            if not (isinstance(func, ast.Attribute) and func.attr == "submit"):
                continue
            receiver = func.value
            is_pool = (
                isinstance(receiver, ast.Name) and receiver.id in pools
            ) or (_is_self_attr(receiver) and receiver.attr in pools)
            if not is_pool:
                continue
            if node.args:
                callable_arg = node.args[0]
                if isinstance(callable_arg, ast.Lambda) or _is_self_attr(
                    callable_arg
                ):
                    violations.append(self.violation(
                        source, callable_arg,
                        "submit() callable must be a module-level "
                        "function; bound methods/lambdas pickle the "
                        "instance or fail outright under spawn",
                    ))
                for arg in node.args[1:]:
                    check_payload(arg, "submit() arguments")
        return violations
