"""R001 — wall-clock reads go through the ``repro.exec.context`` seam."""

from __future__ import annotations

import ast
from typing import List

from ..base import Rule, SourceFile, Violation

#: Canonical dotted paths of clock reads the engine must not scatter.
WALL_CLOCK_CALLS = frozenset({
    "time.time",
    "time.time_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.process_time",
    "time.process_time_ns",
    "time.clock_gettime",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
})

#: The one module allowed to touch the clock directly: it *is* the seam.
CLOCK_SEAM_MODULE = "repro.exec.context"


class WallClockRule(Rule):
    """No wall-clock reads outside the ``repro.exec.context`` clock seam.

    Deadlines, span timings, and serving latency all flow from the
    injectable clock carried by :class:`repro.exec.context.ExecutionContext`
    (``wall_clock`` is its module-level default).  A stray ``time.time()``
    or ``datetime.now()`` elsewhere bypasses that seam: deterministic
    tests can no longer fake the clock, timings stop appearing in the span
    tree, and deadline accounting silently diverges from what the trace
    reports.  Import ``repro.exec.context.wall_clock`` (or accept a
    ``clock`` parameter) instead.  Both *calls* and bare *references*
    (e.g. ``clock=time.perf_counter`` defaults) are flagged — passing the
    raw clock around is the same bypass one hop later.
    """

    id = "R001"
    title = "wall-clock read outside the repro.exec.context clock seam"

    def check(self, source: SourceFile) -> List[Violation]:
        if source.module == CLOCK_SEAM_MODULE:
            return []
        violations: List[Violation] = []
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.Attribute):
                continue
            if not isinstance(node.ctx, ast.Load):
                continue
            dotted = source.dotted(node)
            if dotted in WALL_CLOCK_CALLS:
                violations.append(self.violation(
                    source, node,
                    f"wall-clock read `{dotted}` outside the "
                    f"{CLOCK_SEAM_MODULE} clock seam; use "
                    "repro.exec.context.wall_clock or an injected clock",
                ))
        for node in ast.walk(source.tree):
            if isinstance(node, ast.ImportFrom) and node.module in (
                "time", "datetime"
            ):
                for alias in node.names:
                    dotted = f"{node.module}.{alias.name}"
                    if dotted in WALL_CLOCK_CALLS:
                        violations.append(self.violation(
                            source, node,
                            f"importing `{dotted}` binds a raw wall clock; "
                            "use repro.exec.context.wall_clock instead",
                        ))
        return violations
