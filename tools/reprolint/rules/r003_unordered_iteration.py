"""R003 — no order-sensitive accumulation over unordered collections."""

from __future__ import annotations

import ast
from typing import List, Optional, Sequence, Set, Union

from ..base import (
    Rule,
    SourceFile,
    Violation,
    assigned_names,
    iter_function_scopes,
    walk_scope,
)

#: Packages whose float pipelines feed ranked answers.  An
#: order-of-summation difference here changes score bits, which changes
#: tie-breaks, which changes answers.
SCORING_PACKAGES = ("repro.core", "repro.index", "repro.inference", "repro.text")

#: Builtins/constructors that produce a set.
SET_BUILDERS = frozenset({"set", "frozenset"})

#: Methods returning a set when called on a set-ish receiver.
SET_METHODS = frozenset({
    "intersection", "union", "difference", "symmetric_difference",
})

#: Dict-view accessors (insertion-ordered, but still flagged inside float
#: sums — see the rule docstring for why).
DICT_VIEW_METHODS = frozenset({"keys", "values", "items"})

#: Accumulation callables whose result depends on float summation order.
SUM_CALLABLES = frozenset({"sum", "fsum"})

_Comp = Union[ast.GeneratorExp, ast.ListComp, ast.SetComp, ast.DictComp]


def _is_sorted_call(node: ast.AST) -> bool:
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in ("sorted", "min", "max", "len")
    )


class _ScopeSets:
    """Best-effort, single-pass inference of set-typed local names."""

    def __init__(self, body: Sequence[ast.stmt]) -> None:
        self.names: Set[str] = set()
        for node in walk_scope(body):
            if isinstance(node, ast.Assign):
                self._note(node.targets, node.value)
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                self._note([node.target], node.value)

    def _note(self, targets: Sequence[ast.AST], value: ast.AST) -> None:
        bound: Set[str] = set()
        for target in targets:
            bound |= assigned_names(target)
        if not bound:
            return
        if self.is_set_expr(value):
            self.names |= bound
        else:
            self.names -= bound  # rebound to something non-set

    def is_set_expr(self, node: ast.AST) -> bool:
        """Is ``node`` statically recognizable as producing a set?"""
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Name):
            return node.id in self.names
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Name) and func.id in SET_BUILDERS:
                return True
            if (
                isinstance(func, ast.Attribute)
                and func.attr in SET_METHODS
                and self.is_set_expr(func.value)
            ):
                return True
            return False
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
        ):
            return self.is_set_expr(node.left) or self.is_set_expr(node.right)
        return False

    def is_dict_view(self, node: ast.AST) -> bool:
        """Is ``node`` a ``.keys()``/``.values()``/``.items()`` call?"""
        return (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in DICT_VIEW_METHODS
            and not node.args
        )


class UnorderedIterationRule(Rule):
    """No float accumulation over set (or dict-view) iteration in scoring code.

    Set iteration order depends on element hashes — and string hashing is
    salted per process (``PYTHONHASHSEED``) — so ``sum(w(x) for x in s)``
    over a set ``s`` of strings can produce *different float bits on
    different runs* of the same corpus and query: float addition is not
    associative.  Inside ``repro.core``/``repro.index``/``repro.inference``/
    ``repro.text`` — the packages whose floats feed ranked answers — that
    breaks the engine's headline bit-identity guarantee.  Iterate
    ``sorted(...)`` (canonical order, run-independent) or restructure so
    the accumulation happens over an insertion-ordered sequence.

    Two shapes are flagged:

    - ``sum(...)``/``math.fsum(...)`` whose generator iterates a set-typed
      expression *or* a dict view (dict order is insertion order — stable
      within one build path, but two backends may populate the same dict
      in different orders, so a float reduction over a view still deserves
      a look; suppress with a reason when the insertion order is provably
      input-determined);
    - a ``for`` loop over a set-typed expression whose body accumulates
      via augmented assignment (``+=``, ``*=``, …).

    Wrapping the iterable in ``sorted()`` satisfies the rule.
    """

    id = "R003"
    title = "order-sensitive accumulation over an unordered collection"

    def applies(self, source: SourceFile) -> bool:
        return source.module.startswith(SCORING_PACKAGES)

    def check(self, source: SourceFile) -> List[Violation]:
        if not self.applies(source):
            return []
        violations: List[Violation] = []
        for _scope, body in iter_function_scopes(source.tree):
            sets = _ScopeSets(body)
            for node in walk_scope(body):
                if isinstance(node, ast.Call):
                    violations.extend(self._check_sum(source, node, sets))
                elif isinstance(node, ast.For):
                    violations.extend(self._check_loop(source, node, sets))
        return violations

    def _check_sum(
        self, source: SourceFile, node: ast.Call, sets: _ScopeSets
    ) -> List[Violation]:
        func = node.func
        name: Optional[str] = None
        if isinstance(func, ast.Name):
            name = func.id
        elif isinstance(func, ast.Attribute):
            name = func.attr
        if name not in SUM_CALLABLES or not node.args:
            return []
        arg = node.args[0]
        if not isinstance(
            arg, (ast.GeneratorExp, ast.ListComp, ast.SetComp)
        ):
            return []
        out: List[Violation] = []
        for comp in arg.generators:
            if _is_sorted_call(comp.iter):
                continue
            if sets.is_set_expr(comp.iter):
                out.append(self.violation(
                    source, comp.iter,
                    f"float `{name}(...)` iterates a set — order is "
                    "hash-salted per process; iterate sorted(...) instead",
                ))
            elif sets.is_dict_view(comp.iter):
                out.append(self.violation(
                    source, comp.iter,
                    f"float `{name}(...)` iterates a dict view — order is "
                    "insertion order, which must be proven backend-invariant; "
                    "iterate sorted(...) or suppress with a reason",
                ))
        return out

    def _check_loop(
        self, source: SourceFile, node: ast.For, sets: _ScopeSets
    ) -> List[Violation]:
        if _is_sorted_call(node.iter) or not sets.is_set_expr(node.iter):
            return []
        for inner in node.body:
            for sub in ast.walk(inner):
                if isinstance(sub, ast.AugAssign):
                    return [self.violation(
                        source, node.iter,
                        "loop over a set accumulates via augmented "
                        "assignment — set order is hash-salted per process; "
                        "iterate sorted(...) instead",
                    )]
        return []
