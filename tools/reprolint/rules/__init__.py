"""The reprolint rule catalog.

One module per rule; :data:`ALL_RULES` is the engine's registry, in rule-id
order.  Each rule class's docstring is its normative catalog entry — the
``--list-rules`` output and the DESIGN.md "Static guarantees" section are
both generated views of these docstrings, so the rule, its rationale, and
its documentation cannot drift apart.
"""

from __future__ import annotations

from typing import Dict, List

from ..base import Rule
from .r001_wall_clock import WallClockRule
from .r002_unseeded_random import UnseededRandomRule
from .r003_unordered_iteration import UnorderedIterationRule
from .r004_unbounded_cache import UnboundedCacheRule
from .r005_lock_discipline import LockDisciplineRule
from .r006_swallowed_cancellation import SwallowedCancellationRule
from .r007_mutable_default import MutableDefaultRule
from .r008_unrecorded_recovery import UnrecordedRecoveryRule
from .r009_fork_safety import ForkSafetyRule

__all__ = [
    "ALL_RULES",
    "RULES_BY_ID",
    "WallClockRule",
    "UnseededRandomRule",
    "UnorderedIterationRule",
    "UnboundedCacheRule",
    "LockDisciplineRule",
    "SwallowedCancellationRule",
    "MutableDefaultRule",
    "UnrecordedRecoveryRule",
    "ForkSafetyRule",
]

#: Every rule, instantiated, in id order.
ALL_RULES: List[Rule] = [
    WallClockRule(),
    UnseededRandomRule(),
    UnorderedIterationRule(),
    UnboundedCacheRule(),
    LockDisciplineRule(),
    SwallowedCancellationRule(),
    MutableDefaultRule(),
    UnrecordedRecoveryRule(),
    ForkSafetyRule(),
]

#: Rule lookup by id (``"R001"`` …), used for disable-comment validation.
RULES_BY_ID: Dict[str, Rule] = {rule.id: rule for rule in ALL_RULES}
