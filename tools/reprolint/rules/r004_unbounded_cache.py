"""R004 — memoization state must be bounded (``BoundedCache``), not a dict."""

from __future__ import annotations

import ast
from typing import List, Optional

from ..base import (
    DICT_BUILDERS,
    Rule,
    SourceFile,
    Violation,
    self_attribute,
)

#: Sanctioned cache constructors (bounded, thread-safe, counter-instrumented).
BOUNDED_CACHES = frozenset({"BoundedCache", "LRUCache", "FeatureCache"})


def _cache_like(name: str) -> bool:
    lowered = name.lower()
    return "cache" in lowered or "memo" in lowered


def _dict_shaped(value: ast.AST) -> bool:
    if isinstance(value, (ast.Dict, ast.DictComp)):
        return True
    if isinstance(value, ast.Call):
        func = value.func
        callee: Optional[str] = None
        if isinstance(func, ast.Name):
            callee = func.id
        elif isinstance(func, ast.Attribute):
            callee = func.attr
        return callee in DICT_BUILDERS
    return False


class UnboundedCacheRule(Rule):
    """No dict-shaped ``*_cache``/``*_memo`` attributes — use ``BoundedCache``.

    A plain ``self._foo_cache = {}`` grows with its key space forever: for
    corpus-keyed memos (terms, cells, query columns) that is unbounded
    memory on a long-lived service, and — the lesson of PR 4's PMI² cache
    promotion — such dicts also tend to be mutated from probe threads
    without a lock.  :class:`repro.core.features.BoundedCache` is the one
    sanctioned primitive: LRU-bounded (eviction only ever costs
    recomputation, never correctness), thread-safe, and hit/miss
    instrumented so ``WWTService.stats()`` can report it.  Instance,
    class, and module-level bindings are checked; function locals are
    exempt (they die with the call, so they are bounded by construction).
    """

    id = "R004"
    title = "unbounded dict-shaped cache attribute; use BoundedCache"

    def check(self, source: SourceFile) -> List[Violation]:
        violations: List[Violation] = []
        module_level = set(source.tree.body)
        class_level = {
            stmt
            for node in ast.walk(source.tree)
            if isinstance(node, ast.ClassDef)
            for stmt in node.body
        }
        for node in ast.walk(source.tree):
            if isinstance(node, ast.Assign):
                targets, value = node.targets, node.value
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                targets, value = [node.target], node.value
            else:
                continue
            if not _dict_shaped(value):
                continue
            for target in targets:
                attr = self_attribute(target)
                if attr is not None and _cache_like(attr):
                    violations.append(self.violation(
                        source, node,
                        f"`self.{attr}` is an unbounded dict-shaped cache; "
                        "use repro.core.features.BoundedCache",
                    ))
                elif (
                    isinstance(target, ast.Name)
                    and _cache_like(target.id)
                    and (node in module_level or node in class_level)
                ):
                    violations.append(self.violation(
                        source, node,
                        f"`{target.id}` is an unbounded dict-shaped cache; "
                        "use repro.core.features.BoundedCache",
                    ))
        return violations
