"""R006 — ``repro.exec`` never swallows deadlines or cancellation."""

from __future__ import annotations

import ast
from typing import List

from ..base import Rule, SourceFile, Violation

#: Exception names that carry a deadline/cancellation signal — or are
#: broad enough to catch one by accident.
SIGNAL_EXCEPTIONS = frozenset({
    "DeadlineExceeded",
    "ExecutionCancelled",
    "TimeoutError",
    "CancelledError",
    "Exception",
    "BaseException",
})

#: The execution engine package this rule patrols.
EXEC_PACKAGE = "repro.exec"


def _handler_names(handler: ast.ExceptHandler) -> List[str]:
    node = handler.type
    if node is None:
        return ["<bare except>"]
    exprs = node.elts if isinstance(node, ast.Tuple) else [node]
    names: List[str] = []
    for expr in exprs:
        if isinstance(expr, ast.Name):
            names.append(expr.id)
        elif isinstance(expr, ast.Attribute):
            names.append(expr.attr)
    return names


def _reraises(handler: ast.ExceptHandler) -> bool:
    return any(
        isinstance(node, ast.Raise) for node in ast.walk(handler)
    )


class SwallowedCancellationRule(Rule):
    """No ``except`` in ``repro.exec`` may swallow deadline/cancellation.

    The execution engine's contract (DESIGN.md, "Execution engine") is
    that :class:`DeadlineExceeded` (with ``degraded_ok`` off) and
    :class:`ExecutionCancelled` propagate to the caller — they are the
    *mechanism* of deadline enforcement and cooperative cancellation, not
    error conditions a stage may recover from.  A handler inside
    ``repro.exec`` that catches them (directly, or via ``TimeoutError``/
    ``Exception``/a bare ``except``) and does not re-raise turns a
    hard-deadline query into a silent full-latency one and makes
    ``CancellationToken.cancel()`` a no-op — precisely the failure modes
    an async executor would amplify.  Catch narrower exceptions, or
    re-raise after cleanup.
    """

    id = "R006"
    title = "except clause swallows deadline/cancellation in repro.exec"

    def check(self, source: SourceFile) -> List[Violation]:
        if not source.module.startswith(EXEC_PACKAGE):
            return []
        violations: List[Violation] = []
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            caught = [
                name for name in _handler_names(node)
                if name in SIGNAL_EXCEPTIONS or name == "<bare except>"
            ]
            if caught and not _reraises(node):
                violations.append(self.violation(
                    source, node,
                    f"except clause catching {', '.join(sorted(caught))} "
                    "swallows the engine's deadline/cancellation signal; "
                    "catch narrower exceptions or re-raise",
                ))
        return violations
