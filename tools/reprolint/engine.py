"""The reprolint engine: file walking, disable comments, reporting.

Suppression grammar (checked strictly — see :class:`DisableError`):

- ``# reprolint: disable=R001 -- reason`` suppresses the listed rule(s)
  on that physical line;
- ``# reprolint: disable-file=R001,R003 -- reason`` suppresses the rules
  for the whole file (conventionally placed at the top);
- the ``-- reason`` string is **mandatory** — a bare disable is itself a
  lint error (``R000``), as is disabling an unknown rule id.  The reason
  is the reviewable artifact: it must say why the invariant provably
  holds here even though the rule cannot see it.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from .base import Rule, SourceFile, Violation
from .rules import ALL_RULES, RULES_BY_ID

__all__ = [
    "Suppressions",
    "lint_file",
    "lint_paths",
    "iter_python_files",
    "DEFAULT_TARGETS",
]

#: What ``python -m tools.reprolint`` checks when given no paths.
DEFAULT_TARGETS = ("src", "benchmarks", "tools")

#: ``# reprolint: disable=R001,R002 -- reason`` (or ``disable-file=``).
_DISABLE_RE = re.compile(
    r"#\s*reprolint:\s*(?P<scope>disable(?:-file)?)\s*=\s*"
    r"(?P<ids>[A-Za-z0-9,\s]+?)"
    r"(?:\s*--\s*(?P<reason>.*\S))?\s*$"
)


@dataclass
class Suppressions:
    """Parsed disable comments of one file, plus their own hygiene errors."""

    #: line -> rule ids disabled on that line.
    by_line: Dict[int, Set[str]] = field(default_factory=dict)
    #: rule ids disabled for the whole file.
    file_wide: Set[str] = field(default_factory=set)
    #: Hygiene violations (bare disables, unknown ids) — always reported.
    errors: List[Violation] = field(default_factory=list)

    def active(self, violation: Violation) -> bool:
        """Is ``violation`` suppressed by a disable comment?"""
        if violation.rule_id in self.file_wide:
            return True
        return violation.rule_id in self.by_line.get(violation.line, set())


def parse_suppressions(path: Path, text: str) -> Suppressions:
    """Extract and validate every ``# reprolint:`` comment in ``text``."""
    result = Suppressions()
    try:
        tokens = tokenize.generate_tokens(io.StringIO(text).readline)
        comments = [
            (token.start[0], token.string)
            for token in tokens
            if token.type == tokenize.COMMENT
        ]
    except tokenize.TokenError:  # pragma: no cover - unparsable files
        comments = []

    def hygiene(line: int, message: str) -> None:
        result.errors.append(Violation(
            path=path, line=line, col=1, rule_id="R000", message=message,
        ))

    for line, comment in comments:
        if re.match(r"#\s*reprolint\s*:", comment) is None:
            continue
        match = _DISABLE_RE.search(comment)
        if match is None:
            hygiene(line, f"malformed reprolint comment: {comment.strip()!r}")
            continue
        ids = {part.strip() for part in match.group("ids").split(",") if part.strip()}
        unknown = sorted(i for i in ids if i not in RULES_BY_ID)
        if unknown:
            hygiene(
                line,
                f"disable names unknown rule id(s) {', '.join(unknown)} "
                f"(known: {', '.join(sorted(RULES_BY_ID))})",
            )
            continue
        reason = match.group("reason")
        if not reason:
            hygiene(
                line,
                "bare disable without a reason; write "
                "`# reprolint: disable=RXXX -- why the invariant holds here`",
            )
            continue
        if match.group("scope") == "disable-file":
            result.file_wide |= ids
        else:
            result.by_line.setdefault(line, set()).update(ids)
    return result


def lint_file(
    path: Path,
    src_root: Optional[Path] = None,
    rules: Optional[Sequence[Rule]] = None,
) -> List[Violation]:
    """Lint one file: rule violations minus suppressions, plus hygiene errors."""
    try:
        source = SourceFile.parse(path, src_root=src_root)
    except SyntaxError as exc:
        return [Violation(
            path=path,
            line=exc.lineno or 1,
            col=(exc.offset or 0) + 1,
            rule_id="R000",
            message=f"file does not parse: {exc.msg}",
        )]
    suppressions = parse_suppressions(path, source.text)
    violations: List[Violation] = list(suppressions.errors)
    seen: Set[Tuple[int, int, str, str]] = set()
    for rule in (rules if rules is not None else ALL_RULES):
        for violation in rule.check(source):
            key = (violation.line, violation.col, violation.rule_id,
                   violation.message)
            if key in seen or suppressions.active(violation):
                continue
            seen.add(key)
            violations.append(violation)
    violations.sort(key=lambda v: (v.line, v.col, v.rule_id))
    return violations


def iter_python_files(paths: Iterable[Path]) -> List[Path]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    out: Set[Path] = set()
    for path in paths:
        if path.is_dir():
            out.update(p for p in path.rglob("*.py"))
        elif path.suffix == ".py":
            out.add(path)
    return sorted(out)


def lint_paths(
    paths: Iterable[Path],
    src_root: Optional[Path] = None,
    rules: Optional[Sequence[Rule]] = None,
) -> List[Violation]:
    """Lint every Python file under ``paths`` (directories recursed)."""
    violations: List[Violation] = []
    for path in iter_python_files(paths):
        violations.extend(lint_file(path, src_root=src_root, rules=rules))
    return violations
