"""Shared plumbing for reprolint rules: source model, violations, helpers.

A rule is a class with an ``id`` (``"R001"``), a one-line ``title``, a
docstring explaining the invariant it protects (the docstrings double as
the ``--list-rules`` catalog), and a ``check`` method mapping a parsed
:class:`SourceFile` to :class:`Violation` instances.  Rules are pure
functions of the AST — no imports of the checked code, no execution — so
the linter runs safely over anything, including broken work in progress.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple


@dataclass(frozen=True)
class Violation:
    """One rule hit at a specific source location."""

    path: Path
    line: int
    col: int
    rule_id: str
    message: str

    def format(self) -> str:
        """``path:line:col: R00X message`` — the one-line report form."""
        return f"{self.path}:{self.line}:{self.col}: {self.rule_id} {self.message}"


@dataclass
class SourceFile:
    """One parsed Python file plus the context rules need to scope themselves."""

    path: Path
    text: str
    tree: ast.Module
    #: Dotted module path (``repro.exec.context`` for files under ``src/``,
    #: the bare stem otherwise) — rules use it for package scoping.
    module: str
    #: Names bound to whole modules: ``import time`` -> ``{"time": "time"}``,
    #: ``import numpy.linalg as la`` -> ``{"la": "numpy.linalg"}``.
    module_aliases: Dict[str, str] = field(default_factory=dict)
    #: Names bound to module members: ``from time import perf_counter as pc``
    #: -> ``{"pc": ("time", "perf_counter")}``.
    member_aliases: Dict[str, Tuple[str, str]] = field(default_factory=dict)

    @classmethod
    def parse(cls, path: Path, src_root: Optional[Path] = None) -> SourceFile:
        """Read and parse ``path``, deriving its dotted module name."""
        text = path.read_text(encoding="utf-8")
        tree = ast.parse(text, filename=str(path))
        module = module_name(path, src_root)
        source = cls(path=path, text=text, tree=tree, module=module)
        source._collect_imports()
        return source

    def _collect_imports(self) -> None:
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    self.module_aliases[alias.asname or alias.name.split(".")[0]] = (
                        alias.name if alias.asname else alias.name.split(".")[0]
                    )
                    if alias.asname:
                        self.module_aliases[alias.asname] = alias.name
            elif isinstance(node, ast.ImportFrom):
                if node.module is None or node.level:
                    continue  # relative imports resolve within the repo
                for alias in node.names:
                    self.member_aliases[alias.asname or alias.name] = (
                        node.module, alias.name,
                    )

    def dotted(self, node: ast.AST) -> Optional[str]:
        """Resolve an attribute chain to its canonical dotted path.

        ``time.perf_counter`` with ``import time as t`` spelled ``t.perf_counter``
        resolves to ``"time.perf_counter"``; ``datetime.now`` after
        ``from datetime import datetime`` resolves to ``"datetime.datetime.now"``.
        Returns ``None`` for chains not rooted in a tracked import.
        """
        parts: List[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        parts.reverse()
        name = node.id
        if name in self.member_aliases:
            module, member = self.member_aliases[name]
            return ".".join([module, member] + parts)
        if name in self.module_aliases:
            return ".".join([self.module_aliases[name]] + parts)
        return None


def module_name(path: Path, src_root: Optional[Path] = None) -> str:
    """Dotted module path for files under ``src/``; the stem otherwise."""
    resolved = path.resolve()
    if src_root is not None:
        try:
            relative = resolved.relative_to(src_root.resolve())
        except ValueError:
            pass
        else:
            parts = list(relative.parts)
            parts[-1] = relative.stem
            if parts[-1] == "__init__":
                parts.pop()
            return ".".join(parts)
    return path.stem


class Rule:
    """Base class for reprolint rules.

    Subclasses set ``id`` and ``title`` and implement :meth:`check`.  The
    class docstring is the rule's catalog entry: state the invariant, why
    it protects bit-identity/determinism, and what the sanctioned
    alternative is.
    """

    id: str = "R000"
    title: str = ""

    def check(self, source: SourceFile) -> List[Violation]:
        """Return every violation of this rule in ``source``."""
        raise NotImplementedError

    def violation(
        self, source: SourceFile, node: ast.AST, message: str
    ) -> Violation:
        """Build a :class:`Violation` anchored at ``node``."""
        return Violation(
            path=source.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            rule_id=self.id,
            message=message,
        )


# -- small AST helpers shared by several rules -------------------------------

#: Call names that build a plain (unbounded) dict.
DICT_BUILDERS = {"dict", "defaultdict", "OrderedDict", "Counter"}

#: Call names that build mutable containers (R007's default-argument check).
MUTABLE_BUILDERS = {"list", "dict", "set", "bytearray"} | DICT_BUILDERS


def call_name(node: ast.AST) -> Optional[str]:
    """The bare callee name of a ``Call`` (``foo(...)`` or ``mod.foo(...)``)."""
    if not isinstance(node, ast.Call):
        return None
    func = node.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def self_attribute(node: ast.AST) -> Optional[str]:
    """``"X"`` when ``node`` is exactly ``self.X``, else ``None``."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def iter_function_scopes(
    tree: ast.Module,
) -> Iterator[Tuple[ast.AST, Sequence[ast.stmt]]]:
    """Yield ``(scope_node, body)`` for the module and every def in it."""
    yield tree, tree.body
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node, node.body


def walk_scope(body: Sequence[ast.stmt]) -> Iterator[ast.AST]:
    """Walk ``body`` without descending into nested function definitions.

    Used by rules that analyze one scope at a time (via
    :func:`iter_function_scopes`) so a nested def's statements are checked
    exactly once — in their own scope, with their own local bindings.
    Class bodies *are* descended into for their non-def statements.
    """
    stack: List[ast.AST] = list(body)
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        stack.extend(ast.iter_child_nodes(node))


def assigned_names(target: ast.AST) -> Set[str]:
    """Plain names bound by an assignment target (tuples unpacked)."""
    names: Set[str] = set()
    if isinstance(target, ast.Name):
        names.add(target.id)
    elif isinstance(target, (ast.Tuple, ast.List)):
        for element in target.elts:
            names |= assigned_names(element)
    return names
