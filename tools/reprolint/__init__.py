"""reprolint — the repo-specific invariant linter (stdlib ``ast`` only).

Seven machine-checkable rules encode the invariants behind the engine's
headline guarantee — bit-identical rankings across every backend — plus
the concurrency discipline the execution engine relies on:

==== =====================================================================
R001 wall-clock reads only through the ``repro.exec.context`` clock seam
R002 no module-level/unseeded ``random`` — rngs are passed explicitly
R003 no order-sensitive float accumulation over sets in scoring packages
R004 no unbounded dict-shaped caches — memoization uses ``BoundedCache``
R005 attributes written under ``self._lock`` are written only under it
R006 ``repro.exec`` never swallows deadline/cancellation exceptions
R007 no mutable default arguments, repo-wide
==== =====================================================================

Run ``python -m tools.reprolint`` (defaults to ``src benchmarks tools``),
or ``make reprolint`` / ``make check``.  Suppress a finding with
``# reprolint: disable=RXXX -- reason`` — the reason is mandatory and a
bare disable is itself an error.  See DESIGN.md, "Static guarantees".
"""

from __future__ import annotations

from .base import Rule, SourceFile, Violation
from .engine import (
    DEFAULT_TARGETS,
    Suppressions,
    iter_python_files,
    lint_file,
    lint_paths,
)
from .rules import ALL_RULES, RULES_BY_ID

__version__ = "1.0.0"

__all__ = [
    "ALL_RULES",
    "DEFAULT_TARGETS",
    "RULES_BY_ID",
    "Rule",
    "SourceFile",
    "Suppressions",
    "Violation",
    "iter_python_files",
    "lint_file",
    "lint_paths",
    "__version__",
]
