"""Repository tooling that ships with the source tree.

Everything in here is stdlib-only (the same constraint as the runtime):
``tools.reprolint`` is the repo-specific invariant linter and
``tools/docstring_coverage.py`` the docstring gate.  Run them from the
repository root, e.g. ``python -m tools.reprolint``.
"""
