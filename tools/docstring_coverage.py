#!/usr/bin/env python
"""Docstring coverage gate, stdlib-only.

Counts docstrings on the *public* surface — modules, public classes, and
public functions/methods (names not starting with ``_``) — of the given
files/packages and fails when coverage drops below ``--fail-under``.

This is the in-tree twin of the ``interrogate`` CI gate: CI installs the
real tool, while this script keeps the same bar enforceable anywhere the
repo runs (it needs nothing beyond the standard library), including from
the test suite (``tests/test_docstrings.py``).

Usage::

    python tools/docstring_coverage.py --fail-under 95 \
        src/repro/service src/repro/index src/repro/cli.py
"""

from __future__ import annotations

import argparse
import ast
from pathlib import Path
from typing import Iterable, List, Tuple


def _public_defs(tree: ast.Module) -> Iterable[Tuple[str, ast.AST]]:
    """Yield ``(qualified_name, node)`` for the module's public surface."""
    yield "<module>", tree
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if not node.name.startswith("_"):
                yield node.name, node
        elif isinstance(node, ast.ClassDef):
            if node.name.startswith("_"):
                continue
            yield node.name, node
            for sub in node.body:
                if isinstance(
                    sub, (ast.FunctionDef, ast.AsyncFunctionDef)
                ) and not sub.name.startswith("_"):
                    yield f"{node.name}.{sub.name}", sub


def inspect_file(path: Path) -> Tuple[int, int, List[str]]:
    """``(documented, total, missing_names)`` for one source file."""
    tree = ast.parse(path.read_text(encoding="utf-8"), filename=str(path))
    documented, total, missing = 0, 0, []
    for name, node in _public_defs(tree):
        total += 1
        if ast.get_docstring(node):
            documented += 1
        else:
            missing.append(name)
    return documented, total, missing


def iter_sources(targets: Iterable[str]) -> Iterable[Path]:
    """Expand files/directories into ``.py`` files, sorted."""
    for target in targets:
        path = Path(target)
        if path.is_dir():
            yield from sorted(path.rglob("*.py"))
        else:
            yield path


def check(targets: Iterable[str], verbose: bool = False) -> Tuple[float, List[str]]:
    """``(coverage_percent, missing)`` over all targets."""
    documented = total = 0
    missing: List[str] = []
    for source in iter_sources(targets):
        d, t, m = inspect_file(source)
        documented += d
        total += t
        missing.extend(f"{source}: {name}" for name in m)
        if verbose:
            pct = 100.0 * d / t if t else 100.0
            print(f"{source}: {d}/{t} ({pct:.0f}%)")
    coverage = 100.0 * documented / total if total else 100.0
    return coverage, missing


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("targets", nargs="+",
                        help="files or package directories to inspect")
    parser.add_argument("--fail-under", type=float, default=95.0,
                        help="minimum coverage percent (default 95)")
    parser.add_argument("-v", "--verbose", action="store_true")
    args = parser.parse_args(argv)

    coverage, missing = check(args.targets, verbose=args.verbose)
    if missing:
        print("missing docstrings:")
        for name in missing:
            print(f"  {name}")
    print(f"public docstring coverage: {coverage:.1f}% "
          f"(gate: {args.fail_under:.0f}%)")
    return 0 if coverage >= args.fail_under else 1


if __name__ == "__main__":
    raise SystemExit(main())
