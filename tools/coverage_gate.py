#!/usr/bin/env python
"""Test-coverage gate over a Cobertura ``coverage.xml``, stdlib-only.

``pytest --cov`` (CI's coverage job) emits a Cobertura XML report; this
script parses it with ``xml.etree`` — no dependency on the coverage
package itself — and enforces two bars on the persistence-critical
``repro.index`` package:

- **package line floor**: aggregate line coverage over every file under
  ``src/repro/index/`` must reach ``--line-floor`` (default 90%);
- **decoder branch bar**: ``binfmt.py`` — the decoder whose *failure*
  paths are the contract (every corrupt input must raise, never crash or
  misload) — must have **100% branch coverage**: an unexecuted branch
  there is an unproven corruption check.

Keeping the gate stdlib-only means the *judgment* is testable and
runnable anywhere the repo runs (``tests/test_coverage_gate.py`` feeds
it crafted reports), even though producing ``coverage.xml`` needs
pytest-cov (the ``cov`` extra, installed by CI).

Usage::

    PYTHONPATH=src python -m pytest -q --cov=repro.index --cov-branch \
        --cov-report=xml
    python tools/coverage_gate.py coverage.xml
"""

from __future__ import annotations

import argparse
import xml.etree.ElementTree as ET
from pathlib import Path
from typing import Dict, List, Tuple

#: Path prefix (as recorded in coverage.xml) selecting the gated package.
DEFAULT_PACKAGE_PREFIX = "repro/index/"
#: File inside the package held to the 100%-branch bar.
DEFAULT_BRANCH_FILE = "binfmt.py"


class FileCoverage:
    """Line and branch tallies for one source file in the report."""

    def __init__(self, filename: str) -> None:
        self.filename = filename
        self.lines_total = 0
        self.lines_hit = 0
        self.branches_total = 0
        self.branches_hit = 0
        self.missed_lines: List[int] = []
        self.partial_branches: List[int] = []

    @property
    def line_rate(self) -> float:
        """Covered fraction of statement lines (1.0 when there are none)."""
        if self.lines_total == 0:
            return 1.0
        return self.lines_hit / self.lines_total

    @property
    def branch_rate(self) -> float:
        """Covered fraction of branch conditions (1.0 when there are none)."""
        if self.branches_total == 0:
            return 1.0
        return self.branches_hit / self.branches_total


def _parse_condition_coverage(text: str) -> Tuple[int, int]:
    """``(hit, total)`` from a Cobertura ``condition-coverage`` attribute.

    The attribute reads like ``"50% (1/2)"``; the parenthesized counts are
    authoritative (the percentage is rounded).
    """
    open_at = text.rindex("(")
    hit_s, total_s = text[open_at + 1 : text.rindex(")")].split("/")
    return int(hit_s), int(total_s)


def parse_report(xml_path: Path) -> Dict[str, FileCoverage]:
    """Parse a Cobertura report into per-file tallies keyed by filename.

    Tallies are rebuilt from the individual ``<line>`` elements rather
    than trusting the precomputed ``line-rate``/``branch-rate``
    attributes, so the gate can name the exact missed lines and partial
    branches in its failure output.
    """
    root = ET.parse(xml_path).getroot()
    files: Dict[str, FileCoverage] = {}
    for cls in root.iter("class"):
        filename = cls.get("filename", "")
        record = files.get(filename)
        if record is None:
            record = files[filename] = FileCoverage(filename)
        for line in cls.iter("line"):
            number = int(line.get("number", "0"))
            hits = int(line.get("hits", "0"))
            record.lines_total += 1
            if hits > 0:
                record.lines_hit += 1
            else:
                record.missed_lines.append(number)
            if line.get("branch") == "true":
                condition = line.get("condition-coverage", "100% (0/0)")
                hit, total = _parse_condition_coverage(condition)
                record.branches_total += total
                record.branches_hit += hit
                if hit < total:
                    record.partial_branches.append(number)
    return files


def check(
    files: Dict[str, FileCoverage],
    package_prefix: str = DEFAULT_PACKAGE_PREFIX,
    line_floor: float = 90.0,
    branch_file: str = DEFAULT_BRANCH_FILE,
) -> List[str]:
    """Return the list of gate violations (empty when all bars hold)."""
    package = [
        f for name, f in sorted(files.items()) if package_prefix in name
    ]
    failures: List[str] = []
    if not package:
        failures.append(
            f"no files matching {package_prefix!r} in the report — was "
            "coverage collected with --cov=repro.index?"
        )
        return failures

    lines_total = sum(f.lines_total for f in package)
    lines_hit = sum(f.lines_hit for f in package)
    line_pct = 100.0 * lines_hit / lines_total if lines_total else 100.0
    if line_pct < line_floor:
        worst = sorted(package, key=lambda f: f.line_rate)[:5]
        detail = ", ".join(
            f"{f.filename} {100.0 * f.line_rate:.0f}%" for f in worst
        )
        failures.append(
            f"package line coverage {line_pct:.1f}% is below the "
            f"{line_floor:.0f}% floor for {package_prefix} "
            f"(lowest: {detail})"
        )

    gated = [f for f in package if f.filename.endswith("/" + branch_file)]
    if not gated:
        failures.append(
            f"{branch_file} not found under {package_prefix!r} in the "
            "report — the decoder branch bar cannot be checked"
        )
    for record in gated:
        if record.branches_total == 0:
            failures.append(
                f"{record.filename}: no branch data in the report — was "
                "coverage collected with --cov-branch?"
            )
        elif record.branch_rate < 1.0:
            failures.append(
                f"{record.filename}: branch coverage "
                f"{100.0 * record.branch_rate:.1f}% "
                f"({record.branches_hit}/{record.branches_total}) — the "
                "decoder requires 100%; partial branches at lines "
                f"{record.partial_branches}"
            )
        if record.missed_lines:
            failures.append(
                f"{record.filename}: uncovered lines "
                f"{record.missed_lines} — every decoder path must be "
                "exercised"
            )
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("xml", nargs="?", default="coverage.xml",
                        help="Cobertura report path (default coverage.xml)")
    parser.add_argument("--package-prefix", default=DEFAULT_PACKAGE_PREFIX,
                        help="path fragment selecting the gated package")
    parser.add_argument("--line-floor", type=float, default=90.0,
                        help="minimum package line coverage %% (default 90)")
    parser.add_argument("--branch-file", default=DEFAULT_BRANCH_FILE,
                        help="file held to the 100%%-branch bar")
    args = parser.parse_args(argv)

    xml_path = Path(args.xml)
    if not xml_path.is_file():
        print(f"coverage report not found: {xml_path}")
        return 2
    files = parse_report(xml_path)
    failures = check(
        files,
        package_prefix=args.package_prefix,
        line_floor=args.line_floor,
        branch_file=args.branch_file,
    )
    package = [
        f for name, f in sorted(files.items())
        if args.package_prefix in name
    ]
    for record in package:
        print(f"{record.filename}: lines "
              f"{record.lines_hit}/{record.lines_total} "
              f"({100.0 * record.line_rate:.1f}%), branches "
              f"{record.branches_hit}/{record.branches_total} "
              f"({100.0 * record.branch_rate:.1f}%)")
    if failures:
        print("coverage gate FAILED:")
        for failure in failures:
            print(f"  {failure}")
        return 1
    print(f"coverage gate passed ({len(package)} files under "
          f"{args.package_prefix})")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
