"""Unit tests for the label space."""

import pytest

from repro.core.labels import LabelSpace


class TestLabelSpace:
    def test_size_and_special_labels(self):
        space = LabelSpace(3)
        assert space.size == 5
        assert space.na == 3
        assert space.nr == 4
        assert list(space.query_labels()) == [0, 1, 2]

    def test_is_query(self):
        space = LabelSpace(2)
        assert space.is_query(0) and space.is_query(1)
        assert not space.is_query(space.na)
        assert not space.is_query(space.nr)

    def test_query_column_conversion_roundtrip(self):
        space = LabelSpace(3)
        for qc in (1, 2, 3):
            assert space.to_query_column(space.from_query_column(qc)) == qc

    def test_conversion_bounds(self):
        space = LabelSpace(2)
        with pytest.raises(ValueError):
            space.to_query_column(space.na)
        with pytest.raises(ValueError):
            space.from_query_column(0)
        with pytest.raises(ValueError):
            space.from_query_column(3)

    def test_names(self):
        space = LabelSpace(2)
        assert space.names() == ["1", "2", "na", "nr"]

    def test_invalid_q(self):
        with pytest.raises(ValueError):
            LabelSpace(0)
