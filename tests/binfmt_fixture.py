"""The canonical frozen-fixture corpus for on-disk format tests.

``tests/fixtures/binfmt_v3`` and ``tests/fixtures/corpus_v2`` are this
corpus persisted in the version-3 binary and version-2 JSON layouts.  The
committed bytes are golden: ``tests/test_binfmt.py`` rebuilds the corpus
from :func:`fixture_tables` and byte-compares the re-encoded snapshots
against the committed files, so any accidental drift in the layout (or in
the encoder's determinism) fails the suite rather than silently orphaning
old corpora.

Regenerate (ONLY after an intentional, documented format change)::

    PYTHONPATH=src python -m tests.binfmt_fixture
"""

from pathlib import Path
from typing import List

from repro.index.builder import build_corpus_index
from repro.tables.table import ContextSnippet, WebTable

FIXTURES = Path(__file__).resolve().parent / "fixtures"
V3_DIR = FIXTURES / "binfmt_v3"
V2_DIR = FIXTURES / "corpus_v2"

#: (table_id, page_title, context topic, header, rows) — ids chosen so the
#: two-shard CRC32 partition puts tables in both shards.
_SPECS = [
    (
        "fx_currency_0", "Currencies of the World", "world currencies",
        ["Country", "Currency"],
        [["France", "Euro"], ["Japan", "Yen"], ["India", "Rupee"]],
    ),
    (
        "fx_capital_1", "National Capitals", "capital cities by country",
        ["Country", "Capital"],
        [["France", "Paris"], ["Japan", "Tokyo"], ["Peru", "Lima"]],
    ),
    (
        "fx_dogs_2", "Dog Breeds", "popular dog breeds",
        ["Breed", "Origin"],
        [["Beagle", "England"], ["Akita", "Japan"]],
    ),
    (
        "fx_towers_3", "Tallest Buildings", "tallest buildings by height",
        ["Building", "Height", "City"],
        [["Burj Khalifa", "828", "Dubai"], ["Taipei 101", "508", "Taipei"]],
    ),
    (
        "fx_oscars_4", "Academy Awards", "academy award winners",
        ["Year", "Best Picture"],
        [["2010", "The King's Speech"], ["2011", "The Artist"]],
    ),
]


def fixture_tables() -> List[WebTable]:
    """The five deterministic tables behind both committed fixtures."""
    return [
        WebTable.from_rows(
            rows,
            header=header,
            table_id=table_id,
            context=[ContextSnippet(topic)],
            page_title=title,
            url=f"http://fixture.example/{table_id}",
        )
        for table_id, title, topic, header, rows in _SPECS
    ]


def regenerate() -> None:
    """Rewrite both fixture directories from :func:`fixture_tables`."""
    build_corpus_index(
        fixture_tables(), num_shards=2, save=V3_DIR, index_format="bin"
    )
    build_corpus_index(
        fixture_tables(), num_shards=2, save=V2_DIR, index_format="json"
    )


if __name__ == "__main__":
    regenerate()
    print(f"fixtures rewritten under {FIXTURES}")
