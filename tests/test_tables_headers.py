"""Unit tests for header/title detection (Section 2.1.1)."""

from repro.tables.headers import MAX_HEADER_ROWS, detect_header_rows, row_signature
from repro.tables.table import Cell, CellFormat


def th(text):
    return Cell(text, CellFormat(is_th=True))


def bold(text):
    return Cell(text, CellFormat(bold=True))


def plain(text):
    return Cell(text)


class TestRowSignature:
    def test_fractions(self):
        # th/emphasis fractions are over non-empty cells (title rows with a
        # single bold cell must register as fully emphasized).
        sig = row_signature([th("A"), plain("1"), plain("")])
        assert abs(sig.frac_th - 1 / 2) < 1e-9
        assert abs(sig.frac_empty - 1 / 3) < 1e-9
        assert sig.non_empty_cells == 2

    def test_numeric_fraction_over_non_empty(self):
        sig = row_signature([plain("12"), plain("x"), plain("")])
        assert abs(sig.frac_numeric - 0.5) < 1e-9


class TestDetectHeaders:
    def test_th_header_detected(self):
        grid = [
            [th("Name"), th("Height")],
            [plain("K2"), plain("8611")],
            [plain("Everest"), plain("8848")],
        ]
        assert detect_header_rows(grid) == (0, 1)

    def test_bold_header_detected(self):
        grid = [
            [bold("Name"), bold("Height")],
            [plain("K2"), plain("8611")],
            [plain("Everest"), plain("8848")],
        ]
        assert detect_header_rows(grid) == (0, 1)

    def test_no_header(self):
        grid = [
            [plain("K2"), plain("8611")],
            [plain("Everest"), plain("8848")],
        ]
        assert detect_header_rows(grid) == (0, 0)

    def test_textual_header_over_numeric_body(self):
        grid = [
            [plain("Year"), plain("Sales")],
            [plain("2001"), plain("10")],
            [plain("2002"), plain("20")],
            [plain("2003"), plain("30")],
        ]
        # All-numeric body, textual first row -> header by content cue.
        assert detect_header_rows(grid) == (0, 1)

    def test_title_then_header(self):
        grid = [
            [bold("Forest reserves"), plain(""), plain("")],
            [th("ID"), th("Name"), th("Area")],
            [plain("7"), plain("Shakespeare Hills"), plain("2236")],
            [plain("9"), plain("Plains Creek"), plain("880")],
        ]
        assert detect_header_rows(grid) == (1, 1)

    def test_two_header_rows(self):
        grid = [
            [th("Name"), th("Main areas")],
            [th(""), th("explored")],
            [plain("Tasman"), plain("Oceania")],
            [plain("da Gama"), plain("India route")],
        ]
        titles, headers = detect_header_rows(grid)
        assert titles == 0
        assert headers == 2

    def test_single_row_table(self):
        assert detect_header_rows([[plain("only")]]) == (0, 0)

    def test_empty_grid(self):
        assert detect_header_rows([]) == (0, 0)

    def test_header_cap(self):
        header_rows = [[th(f"h{i}"), th("x")] for i in range(8)]
        body = [[plain("a"), plain("1")] for _ in range(4)]
        titles, headers = detect_header_rows(header_rows + body)
        assert headers <= MAX_HEADER_ROWS

    def test_all_plain_rows_no_header(self):
        grid = [[plain("alpha"), plain("beta")] for _ in range(5)]
        assert detect_header_rows(grid) == (0, 0)

    def test_layout_colored_header(self):
        colored = CellFormat(background="#ccc")
        grid = [
            [Cell("Name", colored), Cell("Country", colored)],
            [plain("Rex"), plain("US")],
            [plain("Fido"), plain("UK")],
        ]
        assert detect_header_rows(grid) == (0, 1)

    def test_dissimilar_second_row_not_header(self):
        grid = [
            [th("Name"), th("Value")],
            [plain("note"), plain("text row")],
            [plain("alpha"), plain("beta")],
            [plain("gamma"), plain("delta")],
        ]
        titles, headers = detect_header_rows(grid)
        assert headers == 1
