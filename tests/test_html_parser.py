"""Unit tests for repro.html (DOM + parser)."""

from repro.html import ElementNode, find_tables, outermost_tables, parse_html


class TestParseBasics:
    def test_simple_document(self):
        root = parse_html("<html><body><p>hello</p></body></html>")
        p = root.find_first("p")
        assert p is not None
        assert p.text_content() == "hello"

    def test_attributes_lowercased(self):
        root = parse_html('<div CLASS="Nav" ID="x">y</div>')
        div = root.find_first("div")
        assert div.get_attr("class") == "Nav"
        assert div.get_attr("id") == "x"

    def test_void_elements_do_not_nest(self):
        root = parse_html("<p>a<br>b</p>")
        p = root.find_first("p")
        assert p.text_content() == "a b"
        assert p.find_first("br") is not None

    def test_entities_decoded(self):
        root = parse_html("<p>fish &amp; chips</p>")
        assert "fish & chips" in root.find_first("p").text_content()

    def test_unclosed_paragraphs(self):
        root = parse_html("<p>one<p>two")
        paragraphs = root.find_all("p")
        assert [p.text_content() for p in paragraphs] == ["one", "two"]

    def test_stray_close_tag_ignored(self):
        root = parse_html("</div><p>ok</p>")
        assert root.find_first("p").text_content() == "ok"

    def test_whitespace_only_text_dropped(self):
        root = parse_html("<div>   \n  </div>")
        div = root.find_first("div")
        assert div.children == []


class TestTableParsing:
    def test_unclosed_td_and_tr(self):
        html = "<table><tr><td>a<td>b<tr><td>c<td>d</table>"
        root = parse_html(html)
        table = root.find_first("table")
        rows = table.find_all("tr")
        assert len(rows) == 2
        assert [td.text_content() for td in rows[0].find_all("td")] == ["a", "b"]

    def test_implicit_tbody_ok(self):
        html = "<table><tbody><tr><td>x</td></tr></tbody></table>"
        root = parse_html(html)
        assert len(root.find_first("table").find_all("tr")) == 1

    def test_find_tables_document_order(self):
        html = "<table id='a'></table><div><table id='b'></table></div>"
        tables = find_tables(parse_html(html))
        assert [t.get_attr("id") for t in tables] == ["a", "b"]

    def test_outermost_excludes_nested(self):
        html = "<table id='outer'><tr><td><table id='inner'></table></td></tr></table>"
        root = parse_html(html)
        assert len(find_tables(root)) == 2
        outer = outermost_tables(root)
        assert len(outer) == 1
        assert outer[0].get_attr("id") == "outer"


class TestDomNavigation:
    def test_path_to_root(self):
        root = parse_html("<div><span>x</span></div>")
        span = root.find_first("span")
        path = span.path_to_root()
        assert path[0] is span
        assert path[-1] is root

    def test_depth(self):
        root = parse_html("<a><b><c>t</c></b></a>")
        c = root.find_first("c")
        assert c.depth() == 3  # document > a > b > c

    def test_ancestors_order(self):
        root = parse_html("<a><b><c>t</c></b></a>")
        c = root.find_first("c")
        tags = [n.tag for n in c.ancestors()]
        assert tags == ["b", "a", "document"]

    def test_iter_descendants_depth_first(self):
        root = parse_html("<a><b>1</b><c>2</c></a>")
        a = root.find_first("a")
        tags = [n.tag for n in a.iter_descendants() if isinstance(n, ElementNode)]
        assert tags == ["b", "c"]

    def test_text_content_joins(self):
        root = parse_html("<div><b>bold</b> and <i>italic</i></div>")
        assert root.find_first("div").text_content() == "bold and italic"

    def test_malformed_input_never_raises(self):
        for bad in ["<", "<table><tr><", "<<<>>>", "<a href=>x", "&#xghij;"]:
            parse_html(bad)  # must not raise
