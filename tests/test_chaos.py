"""Chaos matrix over the 59-query workload.

The invariant under injected faults (ISSUE 9's acceptance bar): every
answer is either **bit-identical** to the fault-free computation or
**flagged degraded with an accurate coverage record** — never a crash,
never a silent wrong answer.  And the seam itself must be provably
inert: with no injector active (or an armed injector whose rules never
fire), a health-enabled corpus answers bit-identically to the plain
sharded baseline.

Determinism notes: every corpus here scatters serially
(``probe_workers=1`` — including the process-mode corpus, whose single
worker process evaluates triggers in probe order) and every health
tracker runs on a fake clock advanced only between queries, so trigger
sequences and backoff windows are exact — the same chaos config
replayed twice produces byte-for-byte the same outcomes, which the
replay test asserts.
"""

import pytest

from repro.exec.context import REASON_SHARD_FAILURE
from repro.faults import (
    EveryNth,
    FaultRule,
    HealthPolicy,
    Once,
    WithProbability,
    injected,
)
from repro.faults.injection import (
    POINT_SHARD_SEARCH,
    POINT_SHARD_WORKER,
    POINT_STORE_GET,
)
from repro.index import ShardedCorpus, build_sharded_corpus
from repro.service import WWTService

NUM_SHARDS = 3

#: Never heals within a run (the fake clock stays at 0): a shard that
#: fails once is out for the rest of the workload — deterministic.
STICKY = HealthPolicy(
    max_retries=0, backoff_s=0.05, reopen_after_s=3600.0,
)
#: Heals between queries when the clock is advanced past the window.
HEALING = HealthPolicy(
    max_retries=0, backoff_s=0.05, reopen_after_s=5.0,
)


class FakeClock:
    def __init__(self, now=0.0):
        self.now = now

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


def fingerprint(full):
    """Everything the acceptance bar compares, exact floats included."""
    return {
        "stage1_ids": list(full.probe.stage1_ids),
        "stage2_ids": list(full.probe.stage2_ids),
        "seed_table_ids": list(full.probe.seed_table_ids),
        "labels": dict(full.mapping.labels),
        "rows": [
            (tuple(r.cells), r.support, r.relevance, tuple(r.source_tables))
            for r in full.answer.rows
        ],
    }


@pytest.fixture(scope="module")
def tables(small_env):
    return list(small_env.synthetic.corpus.store)


@pytest.fixture(scope="module")
def baseline(small_env, tables):
    """Fault-free fingerprints on the plain sharded backend (no health,
    no injector) — the bit-identity reference for every chaos run."""
    service = WWTService(build_sharded_corpus(tables, NUM_SHARDS))
    return {
        wq.query_id: fingerprint(
            service.answer_full(wq.query, use_cache=False)
        )
        for wq in small_env.queries
    }


def run_workload(tables, queries, policy=None, clock=None,
                 advance_between=0.0):
    """One full workload pass; returns ``(query_id, WWTAnswer)`` pairs."""
    built = build_sharded_corpus(tables, NUM_SHARDS)
    corpus = (
        built
        if policy is None
        else ShardedCorpus(
            built.shards, built.stats,
            validate=False, health=policy, clock=clock,
        )
    )
    service = WWTService(corpus)
    outcomes = []
    for wq in queries:
        outcomes.append(
            (wq.query_id, service.answer_full(wq.query, use_cache=False))
        )
        if clock is not None and advance_between:
            clock.advance(advance_between)
    return outcomes


def outcome_digest(outcomes):
    """Replayable value view of a chaos run (for exact-replay asserts)."""
    return [
        (
            query_id,
            full.degraded,
            tuple(full.degraded_reasons),
            None if full.coverage is None else full.coverage.to_dict(),
            fingerprint(full),
        )
        for query_id, full in outcomes
    ]


def check_invariant(outcomes, baseline, num_tables):
    """Every answer: bit-identical, or degraded with accurate coverage."""
    degraded_count = 0
    for query_id, full in outcomes:
        if not full.degraded:
            assert full.coverage is None
            assert fingerprint(full) == baseline[query_id], query_id
        else:
            degraded_count += 1
            assert full.degraded_reasons == [REASON_SHARD_FAILURE], query_id
            coverage = full.coverage
            assert coverage is not None, query_id
            assert not coverage.complete
            assert coverage.shards_total == NUM_SHARDS
            assert coverage.shards_reachable < NUM_SHARDS
            assert coverage.tables_total == num_tables
            assert 0.0 <= coverage.fraction < 1.0
    return degraded_count


class TestInertWhenDisabled:
    """Fault machinery present but quiet must change nothing at all."""

    def test_health_enabled_corpus_matches_plain_baseline(
        self, small_env, tables, baseline
    ):
        outcomes = run_workload(
            tables, small_env.queries, policy=STICKY, clock=FakeClock()
        )
        for query_id, full in outcomes:
            assert not full.degraded, query_id
            assert full.coverage is None
            assert fingerprint(full) == baseline[query_id], query_id

    def test_armed_injector_with_never_firing_rules_is_inert(
        self, small_env, tables, baseline
    ):
        rules = [
            FaultRule(POINT_SHARD_SEARCH, WithProbability(0.0, seed=1)),
            FaultRule(POINT_STORE_GET, WithProbability(0.0, seed=2)),
        ]
        with injected(*rules) as injector:
            outcomes = run_workload(
                tables, small_env.queries, policy=STICKY, clock=FakeClock()
            )
            assert injector.fires() == 0
            assert any(
                s["evaluations"] > 0 for s in injector.snapshot()
            )  # the points really were tripped, the rules just never fired
        for query_id, full in outcomes:
            assert not full.degraded, query_id
            assert fingerprint(full) == baseline[query_id], query_id


class TestChaosMatrix:
    def test_probabilistic_faults_never_crash_or_lie(
        self, small_env, tables, baseline
    ):
        rules = [
            FaultRule(POINT_SHARD_SEARCH, WithProbability(0.10, seed=101)),
            FaultRule(POINT_STORE_GET, WithProbability(0.02, seed=202)),
        ]
        with injected(*rules) as injector:
            outcomes = run_workload(
                tables, small_env.queries, policy=STICKY, clock=FakeClock()
            )
            assert injector.fires() > 0  # the run actually saw chaos
        degraded = check_invariant(outcomes, baseline, len(tables))
        assert degraded > 0

    def test_every_nth_faults_replay_byte_identically(
        self, small_env, tables, baseline
    ):
        def run():
            with injected(
                FaultRule(POINT_SHARD_SEARCH, EveryNth(7))
            ):
                return run_workload(
                    tables, small_env.queries,
                    policy=STICKY, clock=FakeClock(),
                )

        first = run()
        check_invariant(first, baseline, len(tables))
        assert outcome_digest(run()) == outcome_digest(first)

    def test_single_shard_outage_heals_between_queries(
        self, small_env, tables, baseline
    ):
        clock = FakeClock()
        # Shard 1 fails every other probe that reaches it; the clock
        # jumps past the reopen window between queries, so the shard
        # oscillates outage -> probation heal -> outage deterministically.
        with injected(
            FaultRule(POINT_SHARD_SEARCH, EveryNth(2), key="1")
        ):
            outcomes = run_workload(
                tables, small_env.queries, policy=HEALING, clock=clock,
                advance_between=10.0,
            )
        degraded = check_invariant(outcomes, baseline, len(tables))
        # The outage is real but not total: some queries answered at full
        # coverage (healed windows), some were flagged partial.
        assert 0 < degraded < len(small_env.queries)
        for _, full in outcomes:
            if full.degraded:
                assert full.coverage.shards_reachable == NUM_SHARDS - 1


@pytest.fixture(scope="module")
def persisted_dir(tables, tmp_path_factory):
    """The same corpus persisted to disk, for process-pool workers."""
    built = build_sharded_corpus(tables, NUM_SHARDS)
    path = tmp_path_factory.mktemp("chaos-proc") / "corpus"
    built.save(path)
    return path


class TestShardWorkerChaos:
    """Faults raised *inside* a process-pool worker obey the same bar.

    ``shard.worker`` rules ship to workers at pool spawn, so the fault
    fires across the IPC boundary — the parent must fold it into the
    same degrade-accurately-then-heal lifecycle as an in-process shard
    failure, without respawning the pool (an application fault is not a
    dead worker).  ``probe_workers=1`` keeps the single worker process's
    trigger counters deterministic.
    """

    def test_worker_fault_degrades_then_heals_without_respawn(
        self, persisted_dir, small_env, baseline, tables
    ):
        clock = FakeClock()
        with injected(
            FaultRule(POINT_SHARD_WORKER, Once(at=1), key="1")
        ):
            corpus = ShardedCorpus.load(
                persisted_dir, parallel_mode="process",
                health=HEALING, clock=clock,
            )
            service = WWTService(corpus)
            try:
                wq = small_env.queries[0]
                full = service.answer_full(wq.query, use_cache=False)
                assert full.degraded
                assert full.degraded_reasons == [REASON_SHARD_FAILURE]
                coverage = full.coverage
                assert coverage is not None and not coverage.complete
                assert coverage.shards_total == NUM_SHARDS
                assert coverage.shards_reachable == NUM_SHARDS - 1
                assert coverage.tables_total == len(tables)
                spawns = corpus._procpool.spawns
                assert spawns == 1

                clock.advance(10.0)  # past HEALING's reopen window
                healed = service.answer_full(wq.query, use_cache=False)
                assert not healed.degraded
                assert healed.coverage is None
                assert fingerprint(healed) == baseline[wq.query_id]
                # The injected fault was an application error inside a
                # live worker — healing must not have respawned the pool.
                assert corpus._procpool.spawns == spawns
            finally:
                corpus.close()
