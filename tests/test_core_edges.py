"""Tests for the cross-table edge structure (Section 3.3)."""


from repro.core.edges import (
    all_similar_pairs,
    build_edges,
    column_pair_similarity,
    ColumnProfile,
)
from repro.tables.table import WebTable


def countries_table(table_id, names, header="Country"):
    return WebTable.from_rows(
        [[n, str(i)] for i, n in enumerate(names)],
        header=[header, "Value"],
        table_id=table_id,
    )


NAMES = ["France", "Japan", "Brazil", "Canada", "Norway", "Chile", "Kenya", "Spain"]


class TestColumnSimilarity:
    def test_identical_columns_high(self):
        a = countries_table("a", NAMES)
        b = countries_table("b", NAMES)
        pa = ColumnProfile.build(0, 0, a, None)
        pb = ColumnProfile.build(1, 0, b, None)
        assert column_pair_similarity(pa, pb) > 0.8

    def test_disjoint_columns_zero(self):
        a = countries_table("a", NAMES[:4])
        b = countries_table("b", ["Alpha", "Beta", "Gamma", "Delta"])
        pa = ColumnProfile.build(0, 0, a, None)
        pb = ColumnProfile.build(1, 0, b, None)
        assert column_pair_similarity(pa, pb) < 0.2


class TestBuildEdges:
    def test_overlapping_subject_columns_connected(self):
        a = countries_table("a", NAMES)
        b = countries_table("b", NAMES[2:] + ["Peru", "India"])
        edges = build_edges([a, b])
        pairs = {(e.a, e.b) for e in edges}
        assert ((0, 0), (1, 0)) in pairs

    def test_max_matching_one_neighbor_per_table_pair(self):
        # Table b has two columns similar to a's column 0; only one edge may
        # survive per table pair (max-matching robustness, Section 3.3).
        a = countries_table("a", NAMES)
        b = WebTable.from_rows(
            [[n, n] for n in NAMES],  # duplicate content columns
            header=["Capital", "Largest city"],
            table_id="b",
        )
        edges = build_edges([a, b])
        from_a0 = [e for e in edges if e.a == (0, 0) or e.b == (0, 0)]
        assert len(from_a0) <= 1

    def test_no_intra_table_edges(self):
        t = WebTable.from_rows(
            [[n, n] for n in NAMES], header=["X", "Y"], table_id="t"
        )
        assert build_edges([t]) == []

    def test_nsim_normalization_bounded(self):
        tables = [countries_table(f"t{i}", NAMES) for i in range(5)]
        edges = build_edges(tables)
        sums = {}
        for e in edges:
            sums.setdefault(e.a, 0.0)
            sums.setdefault(e.b, 0.0)
            sums[e.a] += e.nsim_ab
            sums[e.b] += e.nsim_ba
        for total in sums.values():
            assert total <= 1.0 + 1e-9  # sum sim/(lambda + sum sims) < 1

    def test_weak_similarity_dropped(self):
        a = countries_table("a", NAMES)
        b = countries_table("b", ["France"] + [f"x{i}" for i in range(20)])
        edges = build_edges([a, b])
        assert all(e.sim >= 0.1 for e in edges)

    def test_deterministic_order(self):
        tables = [countries_table(f"t{i}", NAMES) for i in range(3)]
        assert build_edges(tables) == build_edges(tables)


class TestAllSimilarPairs:
    def test_includes_unmatched_pairs(self):
        # all_similar_pairs (NbrText's structure) keeps *both* look-alike
        # columns, where build_edges keeps at most one.
        a = countries_table("a", NAMES)
        b = WebTable.from_rows(
            [[n, n] for n in NAMES],
            header=["Capital", "Largest city"],
            table_id="b",
        )
        pairs = all_similar_pairs([a, b])
        touching_a0 = [p for p in pairs if p[0] == (0, 0) or p[1] == (0, 0)]
        assert len(touching_a0) == 2

    def test_sims_above_floor(self):
        tables = [countries_table(f"t{i}", NAMES) for i in range(3)]
        for _a, _b, sim in all_similar_pairs(tables):
            assert sim >= 0.1
