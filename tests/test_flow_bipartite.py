"""Bipartite matcher and max-marginals vs brute-force enumeration."""

import itertools
from collections import Counter

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.flow.bipartite import BipartiteMatcher

NEG_INF = float("-inf")


def brute_force_best(weights, right_caps, forced=None):
    """Best max-cardinality assignment weight; left capacities all one.

    ``forced`` optionally pins left node i to right node j.  Returns -inf
    when infeasible.
    """
    n_left = len(weights)
    n_right = len(right_caps)
    total_right = sum(right_caps)
    target = min(n_left, total_right)
    best = NEG_INF
    options = [None] + list(range(n_right))
    for assign in itertools.product(options, repeat=n_left):
        if forced is not None and assign[forced[0]] != forced[1]:
            continue
        chosen = [a for a in assign if a is not None]
        if len(chosen) != target:
            continue
        counts = Counter(chosen)
        if any(counts[j] > right_caps[j] for j in counts):
            continue
        w = sum(weights[i][a] for i, a in enumerate(assign) if a is not None)
        best = max(best, w)
    return best


weight_matrix = st.integers(1, 3).flatmap(
    lambda n_left: st.integers(1, 3).flatmap(
        lambda n_right: st.tuples(
            st.lists(
                st.lists(st.integers(-5, 9), min_size=n_right, max_size=n_right),
                min_size=n_left,
                max_size=n_left,
            ),
            st.lists(st.integers(0, 2), min_size=n_right, max_size=n_right),
        )
    )
)


class TestMatcherBasics:
    def test_simple_diagonal(self):
        m = BipartiteMatcher([[5, 1], [1, 5]], [1, 1], [1, 1])
        r = m.solve()
        assert r.pairs == [(0, 0), (1, 1)]
        assert r.total_weight == 10.0

    def test_negative_weights_still_saturate(self):
        # Flow maximization precedes cost: both columns must be matched even
        # though one weight is negative (paper Section 4.1 semantics).
        m = BipartiteMatcher([[-1.0, -5.0], [-5.0, -1.0]], [1, 1], [1, 1])
        r = m.solve()
        assert len(r.pairs) == 2
        assert r.total_weight == -2.0

    def test_capacity_sharing(self):
        # One right node with capacity 2 absorbs both left nodes.
        m = BipartiteMatcher([[3.0], [2.0]], [1, 1], [2])
        r = m.solve()
        assert r.pairs == [(0, 0), (1, 0)]
        assert r.total_weight == 5.0

    def test_right_surplus_uses_best(self):
        m = BipartiteMatcher([[1.0, 9.0, 2.0]], [1], [1, 1, 1])
        r = m.solve()
        assert r.pairs == [(0, 1)]

    def test_zero_capacity_right_unused(self):
        m = BipartiteMatcher([[100.0, 1.0]], [1], [0, 1])
        r = m.solve()
        assert r.pairs == [(0, 1)]

    def test_validation(self):
        with pytest.raises(ValueError):
            BipartiteMatcher([[1.0]], [1, 2], [1])
        with pytest.raises(ValueError):
            BipartiteMatcher([[1.0, 2.0]], [1], [1])
        with pytest.raises(ValueError):
            BipartiteMatcher([[1.0]], [-1], [1])

    def test_right_of(self):
        m = BipartiteMatcher([[5, 1], [1, 5]], [1, 1], [1, 1])
        r = m.solve()
        assert r.right_of(0) == 0
        assert r.right_of(7) is None

    def test_network_requires_solve(self):
        m = BipartiteMatcher([[1.0]], [1], [1])
        with pytest.raises(RuntimeError):
            _ = m.network
        with pytest.raises(RuntimeError):
            m.max_marginals()


class TestAgainstBruteForce:
    @settings(max_examples=80, deadline=None)
    @given(weight_matrix)
    def test_optimal_weight(self, data):
        weights, right_caps = data
        expected = brute_force_best(weights, right_caps)
        m = BipartiteMatcher(weights, [1] * len(weights), right_caps)
        r = m.solve()
        if expected == NEG_INF:
            assert r.pairs == []
        else:
            assert abs(r.total_weight - expected) < 1e-6

    @settings(max_examples=50, deadline=None)
    @given(weight_matrix)
    def test_max_marginals_match_brute_force(self, data):
        weights, right_caps = data
        m = BipartiteMatcher(weights, [1] * len(weights), right_caps)
        m.solve()
        mm = m.max_marginals()
        for i in range(len(weights)):
            for j in range(len(right_caps)):
                expected = brute_force_best(weights, right_caps, forced=(i, j))
                got = mm[i][j]
                if expected == NEG_INF:
                    assert got == NEG_INF
                else:
                    assert abs(got - expected) < 1e-6, (
                        f"mm[{i}][{j}]: got {got}, want {expected}, "
                        f"weights={weights}, caps={right_caps}"
                    )

    @settings(max_examples=40, deadline=None)
    @given(weight_matrix)
    def test_matching_respects_capacities(self, data):
        weights, right_caps = data
        m = BipartiteMatcher(weights, [1] * len(weights), right_caps)
        r = m.solve()
        counts = Counter(j for _, j in r.pairs)
        for j, c in counts.items():
            assert c <= right_caps[j]
        lefts = [i for i, _ in r.pairs]
        assert len(lefts) == len(set(lefts))
