"""Unit and property tests for repro.text.tfidf."""

import math

from hypothesis import given
from hypothesis import strategies as st

from repro.text.tfidf import TermStatistics, TfIdfVector, cosine

tokens_strategy = st.lists(
    st.text(alphabet="abcdefg", min_size=1, max_size=4), max_size=12
)


class TestTermStatistics:
    def test_df_counts_documents_not_occurrences(self):
        stats = TermStatistics()
        stats.add_document(["a", "a", "b"])
        stats.add_document(["a"])
        assert stats.document_frequency("a") == 2
        assert stats.document_frequency("b") == 1
        assert stats.num_docs == 2

    def test_idf_decreases_with_df(self):
        stats = TermStatistics()
        for _ in range(10):
            stats.add_document(["common"])
        stats.add_document(["rare", "common"])
        assert stats.idf("rare") > stats.idf("common")

    def test_unseen_term_has_positive_idf(self):
        stats = TermStatistics()
        stats.add_document(["a"])
        assert stats.idf("zzz") > 0

    def test_roundtrip_serialization(self):
        stats = TermStatistics()
        stats.add_document(["a", "b"])
        stats.add_document(["b"])
        clone = TermStatistics.from_dict(stats.to_dict())
        assert clone.num_docs == stats.num_docs
        assert clone.idf("b") == stats.idf("b")
        assert clone.idf("missing") == stats.idf("missing")


class TestTfIdfVector:
    def test_norm_of_single_token(self):
        v = TfIdfVector.from_tokens(["x"])
        assert math.isclose(v.norm, 1.0)

    def test_tf_accumulates(self):
        v = TfIdfVector.from_tokens(["x", "x"])
        assert math.isclose(v.weight("x"), 2.0)

    def test_cosine_identical_is_one(self):
        v = TfIdfVector.from_tokens(["a", "b"])
        assert math.isclose(v.cosine(v), 1.0)

    def test_cosine_disjoint_is_zero(self):
        a = TfIdfVector.from_tokens(["a"])
        b = TfIdfVector.from_tokens(["b"])
        assert a.cosine(b) == 0.0

    def test_empty_vector_cosine(self):
        a = TfIdfVector.from_tokens([])
        b = TfIdfVector.from_tokens(["x"])
        assert a.cosine(b) == 0.0
        assert a.norm == 0.0

    def test_idf_weighting_changes_weights(self):
        stats = TermStatistics()
        stats.add_document(["common"])
        stats.add_document(["common", "rare"])
        v = TfIdfVector.from_tokens(["common", "rare"], stats)
        assert v.weight("rare") > v.weight("common")

    @given(tokens_strategy, tokens_strategy)
    def test_cosine_symmetric(self, ta, tb):
        assert math.isclose(cosine(ta, tb), cosine(tb, ta), abs_tol=1e-12)

    @given(tokens_strategy, tokens_strategy)
    def test_cosine_bounded(self, ta, tb):
        c = cosine(ta, tb)
        assert -1e-9 <= c <= 1.0 + 1e-9

    @given(tokens_strategy)
    def test_norm_squared_consistent(self, toks):
        v = TfIdfVector.from_tokens(toks)
        assert math.isclose(v.norm_squared, v.norm**2, rel_tol=1e-9)

    @given(tokens_strategy, tokens_strategy)
    def test_dot_symmetric(self, ta, tb):
        va = TfIdfVector.from_tokens(ta)
        vb = TfIdfVector.from_tokens(tb)
        assert math.isclose(va.dot(vb), vb.dot(va), rel_tol=1e-9, abs_tol=1e-12)

    @given(tokens_strategy)
    def test_norm_equals_sqrt_self_dot(self, toks):
        v = TfIdfVector.from_tokens(toks)
        assert math.isclose(v.norm, math.sqrt(v.dot(v)), rel_tol=1e-9, abs_tol=1e-12)
