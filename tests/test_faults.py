"""Tests for ``repro.faults``: deterministic injection, the per-shard
health lifecycle on a fake clock, partial scatter-gather with coverage,
the close-vs-scatter race, the serve client's narrow retry, and the
service-level degradation counters."""

import http.client
import socket
import threading

import pytest

from repro.faults import (
    DOMAIN_HEALTHY,
    DOMAIN_QUARANTINED,
    DOMAIN_RETRYING,
    Coverage,
    EveryNth,
    FaultInjector,
    FaultRule,
    HealthPolicy,
    HealthTracker,
    InjectedFault,
    Once,
    WithProbability,
    activate,
    active_injector,
    deactivate,
    injected,
    trip,
)
from repro.faults.injection import (
    KNOWN_POINTS,
    POINT_SHARD_MATERIALIZE,
    POINT_SHARD_SEARCH,
    POINT_STORE_GET,
    rules_from_spec,
)
from repro.index import ShardedCorpus, build_sharded_corpus, load_corpus
from repro.serve import ServeClient
from repro.service import QueryRequest, WWTService
from repro.tables.table import WebTable


def make_tables(n=24, prefix="t"):
    return [
        WebTable.from_rows(
            [[f"val{i}a", f"{i}"], [f"val{i}b", f"{i + 1}"]],
            header=["name", "rank"],
            table_id=f"{prefix}{i}",
        )
        for i in range(n)
    ]


class FakeClock:
    def __init__(self, now=0.0):
        self.now = now

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


def ranking(hits):
    """Value view of a hit list (SearchHit compares by identity)."""
    return [(h.doc_id, h.score) for h in hits]


def sharded_with_health(tables, num_shards, policy, clock, probe_workers=1):
    """A health-enabled corpus over the standard CRC32 partition."""
    built = build_sharded_corpus(tables, num_shards)
    return ShardedCorpus(
        built.shards, built.stats, probe_workers=probe_workers,
        validate=False, health=policy, clock=clock,
    )


# ---------------------------------------------------------------------------
# Trigger policies


class TestTriggerPolicies:
    def test_every_nth_fires_on_multiples(self):
        policy = EveryNth(3)
        fired = [policy.should_fire(i, None) for i in range(1, 10)]
        assert fired == [False, False, True] * 3

    def test_every_nth_one_is_always(self):
        assert all(EveryNth(1).should_fire(i, None) for i in range(1, 5))

    def test_once_fires_exactly_at(self):
        policy = Once(at=4)
        assert [policy.should_fire(i, None) for i in range(1, 7)] == [
            False, False, False, True, False, False,
        ]

    def test_with_probability_is_seed_deterministic(self):
        policy = WithProbability(p=0.3, seed=7)
        first = [
            policy.should_fire(i, rng)
            for rng in [policy.make_rng()]
            for i in range(1, 101)
        ]
        second = [
            policy.should_fire(i, rng)
            for rng in [policy.make_rng()]
            for i in range(1, 101)
        ]
        assert first == second
        assert any(first) and not all(first)

    def test_with_probability_extremes(self):
        always = WithProbability(p=1.0, seed=1)
        never = WithProbability(p=0.0, seed=1)
        assert always.should_fire(1, always.make_rng())
        assert not never.should_fire(1, never.make_rng())

    @pytest.mark.parametrize(
        "bad",
        [
            lambda: EveryNth(0),
            lambda: Once(at=0),
            lambda: WithProbability(p=1.5, seed=0),
            lambda: WithProbability(p=-0.1, seed=0),
        ],
    )
    def test_invalid_policies_rejected(self, bad):
        with pytest.raises(ValueError):
            bad()

    def test_unknown_point_rejected_at_construction(self):
        with pytest.raises(ValueError, match="unknown fault point"):
            FaultRule("shard.serach", EveryNth(1))

    def test_rules_from_spec_builds_unkeyed_rules(self):
        rules = rules_from_spec([(POINT_SHARD_SEARCH, EveryNth(2))])
        assert [(r.point, r.key) for r in rules] == [
            (POINT_SHARD_SEARCH, None)
        ]

    def test_known_points_catalog_is_closed(self):
        assert POINT_SHARD_SEARCH in KNOWN_POINTS
        assert len(KNOWN_POINTS) == 6


# ---------------------------------------------------------------------------
# The injector seam


class TestInjectorSeam:
    def test_trip_is_a_noop_when_disabled(self):
        assert active_injector() is None
        trip(POINT_SHARD_SEARCH)  # must not raise
        trip(POINT_STORE_GET, key="t1")

    def test_injected_arms_and_disarms(self):
        with injected(FaultRule(POINT_STORE_GET, EveryNth(1))) as injector:
            assert active_injector() is injector
            with pytest.raises(InjectedFault):
                trip(POINT_STORE_GET, key="t1")
        assert active_injector() is None
        trip(POINT_STORE_GET, key="t1")  # disarmed again

    def test_injected_disarms_on_exception(self):
        with pytest.raises(RuntimeError, match="boom"):
            with injected(FaultRule(POINT_STORE_GET, EveryNth(1))):
                raise RuntimeError("boom")
        assert active_injector() is None

    def test_overlapping_scopes_refused(self):
        with injected():
            with pytest.raises(RuntimeError, match="already active"):
                activate(FaultInjector([]))
        deactivate()  # idempotent
        deactivate()

    def test_keyed_rule_matches_only_its_key(self):
        rule = FaultRule(POINT_SHARD_SEARCH, EveryNth(1), key="1")
        with injected(rule) as injector:
            trip(POINT_SHARD_SEARCH, key="0")  # other shard: no match
            trip(POINT_SHARD_SEARCH)  # keyless call: no match
            with pytest.raises(InjectedFault) as excinfo:
                trip(POINT_SHARD_SEARCH, key="1")
            assert excinfo.value.point == POINT_SHARD_SEARCH
            assert excinfo.value.key == "1"
            (snap,) = injector.snapshot()
            assert snap["evaluations"] == 1 and snap["fires"] == 1

    def test_unkeyed_rule_counts_every_call_at_its_point(self):
        rule = FaultRule(POINT_SHARD_SEARCH, EveryNth(3))
        with injected(rule) as injector:
            outcomes = []
            for i in range(6):
                try:
                    trip(POINT_SHARD_SEARCH, key=str(i))
                    outcomes.append("ok")
                except InjectedFault:
                    outcomes.append("fault")
            assert outcomes == ["ok", "ok", "fault"] * 2
            assert injector.fires() == 2
            assert injector.fires(POINT_SHARD_SEARCH) == 2
            assert injector.fires(POINT_STORE_GET) == 0

    def test_same_rules_same_calls_same_fires(self):
        def run():
            fired = []
            with injected(
                FaultRule(POINT_SHARD_SEARCH, WithProbability(0.4, seed=13))
            ):
                for i in range(50):
                    try:
                        trip(POINT_SHARD_SEARCH, key=str(i % 4))
                    except InjectedFault:
                        fired.append(i)
            return fired

        assert run() == run()


# ---------------------------------------------------------------------------
# HealthTracker lifecycle (fake clock, exact assertions)


class TestHealthTracker:
    def policy(self, **overrides):
        defaults = dict(
            max_retries=2, backoff_s=0.5, backoff_factor=2.0,
            max_backoff_s=4.0, reopen_after_s=10.0,
        )
        defaults.update(overrides)
        return HealthPolicy(**defaults)

    def test_backoff_schedule_is_exponential_and_capped(self):
        policy = self.policy()
        assert [policy.backoff_for(n) for n in range(5)] == [
            0.0, 0.5, 1.0, 2.0, 4.0,  # capped at max_backoff_s
        ]

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            HealthPolicy(max_retries=-1)
        with pytest.raises(ValueError):
            HealthPolicy(backoff_factor=0.5)
        with pytest.raises(ValueError):
            HealthPolicy(backoff_s=2.0, max_backoff_s=1.0)

    def test_failure_backs_off_then_retries(self):
        clock = FakeClock()
        tracker = HealthTracker(2, self.policy(), clock=clock)
        assert tracker.available(0)
        tracker.record_failure(0, RuntimeError("probe died"))
        assert tracker.state(0) == DOMAIN_RETRYING
        assert not tracker.available(0)  # inside the 0.5s window
        clock.advance(0.5)
        assert tracker.available(0)  # this probe IS the retry
        tracker.record_success(0)
        assert tracker.state(0) == DOMAIN_HEALTHY
        assert tracker.states() == [DOMAIN_HEALTHY, DOMAIN_HEALTHY]

    def test_quarantine_after_max_retries_then_reopen_heals(self):
        clock = FakeClock()
        tracker = HealthTracker(3, self.policy(), clock=clock)
        # Three consecutive failures: retrying, retrying, quarantined.
        tracker.record_failure(1)
        assert tracker.state(1) == DOMAIN_RETRYING
        clock.advance(0.5)
        tracker.record_failure(1)
        assert tracker.state(1) == DOMAIN_RETRYING
        clock.advance(1.0)
        tracker.record_failure(1)
        assert tracker.state(1) == DOMAIN_QUARANTINED
        assert tracker.quarantined() == 1
        assert not tracker.available(1)
        clock.advance(9.999)
        assert not tracker.available(1)  # reopen window not yet elapsed
        clock.advance(0.001)
        assert tracker.available(1)  # half-open probation
        tracker.record_success(1)
        assert tracker.state(1) == DOMAIN_HEALTHY
        assert tracker.quarantined() == 0

    def test_failed_reopen_requarantines(self):
        clock = FakeClock()
        tracker = HealthTracker(1, self.policy(max_retries=0), clock=clock)
        tracker.record_failure(0)
        assert tracker.state(0) == DOMAIN_QUARANTINED
        clock.advance(10.0)
        assert tracker.available(0)
        tracker.record_failure(0)  # probation probe failed
        assert tracker.state(0) == DOMAIN_QUARANTINED
        assert not tracker.available(0)

    def test_coverage_counts_only_healthy_domains(self):
        clock = FakeClock()
        tracker = HealthTracker(3, self.policy(), clock=clock)
        tracker.record_failure(2)
        coverage = tracker.coverage([10, 20, 30])
        assert coverage == Coverage(
            shards_total=3, shards_reachable=2,
            tables_total=60, tables_reachable=30,
        )
        assert coverage.fraction == 0.5
        assert not coverage.complete
        with pytest.raises(ValueError, match="weights"):
            tracker.coverage([10, 20])

    def test_coverage_full_and_empty_records(self):
        assert Coverage.full(4, 100).complete
        assert Coverage.full(4, 100).fraction == 1.0
        empty = Coverage(1, 1, 0, 0)
        assert empty.fraction == 1.0  # empty corpus: vacuously covered
        d = Coverage(2, 1, 10, 4).to_dict()
        assert d["fraction"] == 0.4 and d["complete"] is False

    def test_snapshot_carries_counters_and_last_error(self):
        tracker = HealthTracker(2, self.policy(), clock=FakeClock())
        tracker.record_failure(0, ValueError("bad shard"))
        tracker.record_success(1)
        snap = tracker.snapshot()
        assert snap[0]["failures"] == 1
        assert snap[0]["last_error"] == "ValueError: bad shard"
        assert snap[1]["successes"] == 1
        assert tracker.num_domains == 2
        with pytest.raises(ValueError):
            HealthTracker(0)


# ---------------------------------------------------------------------------
# ShardedCorpus failure domains: partial scatter, coverage, healing


class TestShardedFailureDomains:
    POLICY = HealthPolicy(
        max_retries=0, backoff_s=0.1, reopen_after_s=5.0,
    )

    def test_strict_corpus_raises_through(self):
        corpus = build_sharded_corpus(make_tables(), 3)
        with injected(FaultRule(POINT_SHARD_SEARCH, EveryNth(1), key="0")):
            with pytest.raises(InjectedFault):
                corpus.search(["val1a"])

    def test_partial_search_covers_reachable_shards_then_heals(self):
        tables = make_tables()
        clock = FakeClock()
        corpus = sharded_with_health(tables, 3, self.POLICY, clock)
        baseline = build_sharded_corpus(tables, 3).search(["name"], limit=50)
        assert baseline  # the probe matches something to lose

        with injected(FaultRule(POINT_SHARD_SEARCH, Once(), key="1")):
            partial = corpus.search(["name"], limit=50)
        lost = {h.doc_id for h in baseline} - {h.doc_id for h in partial}
        shard1_ids = set(corpus.shards[1].store.ids())
        assert lost  # shard 1 contributed to the baseline
        assert lost <= shard1_ids
        coverage = corpus.coverage()
        assert not coverage.complete
        assert coverage.shards_reachable == 2
        assert coverage.tables_reachable == corpus.num_tables - len(
            shard1_ids
        )

        # Inside the quarantine window the shard sits out silently: no
        # shard-1 document can appear, and coverage stays partial.
        inside = corpus.search(["name"], limit=50)
        assert shard1_ids.isdisjoint({h.doc_id for h in inside})
        assert not corpus.coverage().complete
        # After the reopen window the probation probe succeeds and heals —
        # and the healed ranking is bit-identical to the fault-free one.
        clock.advance(5.0)
        healed = corpus.search(["name"], limit=50)
        assert ranking(healed) == ranking(baseline)
        assert corpus.coverage().complete

    def test_partial_conjunctive_probe_and_get_many(self):
        tables = make_tables()
        clock = FakeClock()
        corpus = sharded_with_health(tables, 3, self.POLICY, clock)
        strict = build_sharded_corpus(tables, 3)
        all_docs = strict.docs_containing_all(["name"], ["header"])
        all_ids = [t.table_id for t in tables]
        shard1_ids = set(corpus.shards[1].store.ids())

        with injected(FaultRule(POINT_SHARD_SEARCH, Once(), key="1")):
            partial = corpus.docs_containing_all(["name"], ["header"])
        assert partial == all_docs - shard1_ids
        # get_many skips the quarantined shard instead of raising.
        fetched = corpus.get_many(all_ids)
        assert [t.table_id for t in fetched] == [
            i for i in all_ids if i not in shard1_ids
        ]
        clock.advance(5.0)
        assert corpus.docs_containing_all(["name"], ["header"]) == all_docs
        assert len(corpus.get_many(all_ids)) == len(all_ids)

    def test_health_snapshot_surface(self):
        corpus = sharded_with_health(
            make_tables(), 2, self.POLICY, FakeClock()
        )
        snap = corpus.health_snapshot()
        assert [d["state"] for d in snap] == [DOMAIN_HEALTHY] * 2
        assert build_sharded_corpus(make_tables(), 2).health_snapshot() is None

    def test_materialize_fault_on_lazy_shard(self, tmp_path):
        tables = make_tables()
        build_sharded_corpus(tables, 2).save(tmp_path / "corpus")
        clock = FakeClock()
        corpus = load_corpus(
            tmp_path / "corpus", mutable=False,
            health=self.POLICY, clock=clock,
        )
        baseline = load_corpus(tmp_path / "corpus", mutable=False).search(
            ["name"], limit=50
        )
        rule = FaultRule(
            POINT_SHARD_MATERIALIZE, Once(), key="shard-0001"
        )
        with injected(rule) as injector:
            partial = corpus.search(["name"], limit=50)
            assert injector.fires() == 1
        assert len(partial) < len(baseline)
        assert not corpus.coverage().complete
        clock.advance(5.0)  # reopen: materialization retries and succeeds
        assert ranking(corpus.search(["name"], limit=50)) == ranking(baseline)
        assert corpus.coverage().complete


# ---------------------------------------------------------------------------
# close() vs in-flight scatter (the submit/shutdown race)


class TestCloseScatterRace:
    def test_close_during_submission_falls_back_serially(self):
        tables = make_tables(32)
        corpus = build_sharded_corpus(tables, 4, probe_workers=4)
        baseline = corpus.search(["name"], limit=50)
        # Shut the pool down behind _run_jobs's back, without nulling the
        # reference — exactly the window a concurrent close() can win.
        corpus._executor.shutdown(wait=True)
        assert ranking(corpus.search(["name"], limit=50)) == ranking(baseline)
        corpus.close()  # still idempotent afterwards
        assert ranking(corpus.search(["name"], limit=50)) == ranking(baseline)

    def test_concurrent_close_never_breaks_a_probe(self):
        tables = make_tables(32)
        corpus = build_sharded_corpus(tables, 4, probe_workers=4)
        baseline = corpus.search(["name"], limit=50)
        errors = []
        results = []
        started = threading.Event()

        def prober():
            started.set()
            try:
                for _ in range(50):
                    results.append(ranking(corpus.search(["name"], limit=50)))
            except Exception as exc:  # pragma: no cover - the regression
                errors.append(exc)

        thread = threading.Thread(target=prober)
        thread.start()
        started.wait(timeout=10)
        corpus.close()
        thread.join(timeout=30)
        assert not thread.is_alive()
        assert errors == []
        assert all(result == ranking(baseline) for result in results)


# ---------------------------------------------------------------------------
# ServeClient narrow retry (satellite: flaky fake server)


class FlakyHTTPServer:
    """Raw-socket HTTP server that kills its first ``drop`` exchanges.

    A dropped exchange reads the full request, then closes the socket
    without replying — the client sees ``RemoteDisconnected`` *after* its
    bytes provably reached the server, the exact case the narrow retry
    must distinguish from a failure before the send.
    """

    def __init__(self, drop=0):
        self.drop = drop
        self.requests = []  # request lines actually received
        self._sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._sock.bind(("127.0.0.1", 0))
        self._sock.listen(8)
        self.host, self.port = self._sock.getsockname()
        self._thread = threading.Thread(target=self._serve, daemon=True)
        self._thread.start()

    def _read_request(self, conn):
        data = b""
        while b"\r\n\r\n" not in data:
            chunk = conn.recv(4096)
            if not chunk:
                return None
            data += chunk
        head, _, body = data.partition(b"\r\n\r\n")
        headers = head.decode("latin-1").split("\r\n")
        length = 0
        for line in headers[1:]:
            name, _, value = line.partition(":")
            if name.strip().lower() == "content-length":
                length = int(value.strip())
        while len(body) < length:
            chunk = conn.recv(4096)
            if not chunk:
                return None
            body += chunk
        return headers[0]

    def _serve(self):
        while True:
            try:
                conn, _ = self._sock.accept()
            except OSError:
                return  # listener closed: server shut down
            with conn:
                request_line = self._read_request(conn)
                if request_line is None:
                    continue
                self.requests.append(request_line)
                if self.drop > 0:
                    self.drop -= 1
                    continue  # close without replying
                body = b'{"ok": true}'
                conn.sendall(
                    b"HTTP/1.1 200 OK\r\n"
                    b"Content-Type: application/json\r\n"
                    b"Content-Length: %d\r\n"
                    b"Connection: close\r\n\r\n%s" % (len(body), body)
                )

    def close(self):
        try:
            # shutdown() (not just close()) wakes the blocked accept().
            self._sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        self._sock.close()
        self._thread.join(timeout=10)


class TestServeClientRetry:
    def test_get_retries_after_midstream_disconnect(self):
        server = FlakyHTTPServer(drop=1)
        try:
            with ServeClient(server.host, server.port, timeout_s=10) as c:
                status, _, body = c.request("GET", "/healthz")
            assert status == 200 and body == {"ok": True}
            # Dropped once, retried once: the server saw both attempts.
            assert server.requests == ["GET /healthz HTTP/1.1"] * 2
        finally:
            server.close()

    def test_post_is_not_resent_after_its_bytes_left(self):
        server = FlakyHTTPServer(drop=1)
        try:
            with ServeClient(server.host, server.port, timeout_s=10) as c:
                with pytest.raises(
                    (http.client.HTTPException, ConnectionError)
                ):
                    c.post_json("/query", {"query": "a | b"})
            # Exactly one attempt: a sent POST must never be replayed.
            assert server.requests == ["POST /query HTTP/1.1"]
        finally:
            server.close()

    def test_post_retried_when_failure_precedes_the_send(self):
        server = FlakyHTTPServer(drop=0)
        try:
            client = ServeClient(server.host, server.port, timeout_s=10)
            real_connection = client._connection
            dials = {"n": 0}

            def flaky_dial():
                dials["n"] += 1
                if dials["n"] == 1:
                    raise ConnectionRefusedError("first dial refused")
                return real_connection()

            client._connection = flaky_dial
            status, _, _ = client.post_json("/query", {"query": "a | b"})
            client.close()
            # The failure preceded the send, so even a POST retries —
            # and the server only ever saw one copy.
            assert status == 200
            assert server.requests == ["POST /query HTTP/1.1"]
        finally:
            server.close()


# ---------------------------------------------------------------------------
# Service-level degradation accounting (quarantine lifecycle end-to-end)


class TestServiceDegradation:
    POLICY = HealthPolicy(max_retries=0, backoff_s=0.1, reopen_after_s=5.0)

    def service(self, clock):
        corpus = sharded_with_health(
            make_tables(48), 3, self.POLICY, clock
        )
        return WWTService(corpus)

    def test_partial_answer_is_flagged_counted_and_not_cached(self):
        clock = FakeClock()
        service = self.service(clock)
        request = QueryRequest.parse("name | rank")
        with injected(FaultRule(POINT_SHARD_SEARCH, Once(), key="1")):
            response = service.answer(request)
        assert response.degraded
        assert response.degraded_reasons == ["shard_failure"]
        assert response.coverage is not None
        assert not response.coverage.complete
        assert 0.0 < response.coverage.fraction < 1.0
        assert not response.cache_hit

        stats = service.stats()
        assert stats.degraded_answers >= 1
        assert stats.degraded_reasons.get("shard_failure", 0) >= 1
        assert stats.partial_answers >= 1
        assert service.coverage() is not None

        # A partial answer must not have been cached: the same query
        # after healing recomputes at full coverage.
        clock.advance(5.0)
        healed = service.answer(request)
        assert not healed.cache_hit
        assert not healed.degraded
        assert healed.coverage is None  # every shard answered
        # The healed answer now caches normally.
        assert service.answer(request).cache_hit

    def test_healed_answer_matches_never_faulted_service(self):
        clock = FakeClock()
        service = self.service(clock)
        request = QueryRequest.parse("name | rank")
        with injected(FaultRule(POINT_SHARD_SEARCH, Once(), key="0")):
            service.answer(request)
        clock.advance(5.0)
        healed = service.answer(request)
        pristine = self.service(FakeClock()).answer(request)
        assert [r.cells for r in healed.rows] == [
            r.cells for r in pristine.rows
        ]
        assert [r.support for r in healed.rows] == [
            r.support for r in pristine.rows
        ]

    def test_quarantine_lifecycle_counters(self):
        clock = FakeClock()
        corpus = sharded_with_health(make_tables(48), 3, self.POLICY, clock)
        service = WWTService(corpus)
        request = QueryRequest.parse("name | rank")
        with injected(FaultRule(POINT_SHARD_SEARCH, Once(), key="2")):
            service.answer(request)
        snap = corpus.health_snapshot()
        assert snap[2]["state"] == DOMAIN_QUARANTINED
        assert snap[2]["failures"] == 1
        assert "InjectedFault" in snap[2]["last_error"]
        clock.advance(5.0)
        service.answer(request)
        snap = corpus.health_snapshot()
        assert snap[2]["state"] == DOMAIN_HEALTHY
        assert snap[2]["successes"] >= 1
        stats = service.stats()
        assert stats.degraded_reasons == {"shard_failure": 1}
        assert stats.partial_answers == 1
        assert "degraded_reasons" in stats.to_dict()
        assert stats.to_dict()["partial_answers"] == 1
