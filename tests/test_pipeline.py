"""Integration tests: two-stage probe, WWT engine, answer quality."""

import pytest

from repro.evaluation.answer_quality import answer_row_error, answer_rows
from repro.pipeline.probe import ProbeConfig, two_stage_probe
from repro.pipeline.wwt import WWTEngine
from repro.query.model import Query
from repro.query.workload import query_by_id


class TestTwoStageProbe:
    def test_probe_returns_candidates(self, small_env):
        wq = query_by_id("country | currency")
        result = two_stage_probe(wq.query, small_env.synthetic.corpus)
        assert result.num_candidates > 0
        assert len(result.stage1_ids) > 0
        ids = [t.table_id for t in result.tables]
        assert len(set(ids)) == len(ids)  # no duplicates across stages

    def test_probe_timings_recorded(self, small_env):
        wq = query_by_id("country | currency")
        timings = {}
        two_stage_probe(wq.query, small_env.synthetic.corpus, timings=timings)
        assert "index1" in timings and timings["index1"] >= 0.0
        assert "read1" in timings

    def test_second_stage_adds_content_matches(self, small_env):
        # The second probe must fire for a meaningful share of queries (the
        # paper reports ~65% at full scale; the small test corpus yields
        # fewer confident seed tables, so the bar here is lower).
        fired = sum(
            1 for probe in small_env.candidates.values() if probe.used_second_stage
        )
        assert fired >= 8

    def test_empty_corpus(self):
        from repro.index.builder import build_corpus_index

        corpus = build_corpus_index([])
        result = two_stage_probe(Query.parse("anything"), corpus)
        assert result.tables == []
        assert not result.used_second_stage

    def test_probe_deterministic_given_seed(self, small_env):
        wq = query_by_id("country | gdp")
        config = ProbeConfig(seed=3)
        a = two_stage_probe(wq.query, small_env.synthetic.corpus, config)
        b = two_stage_probe(wq.query, small_env.synthetic.corpus, config)
        assert [t.table_id for t in a.tables] == [t.table_id for t in b.tables]


class TestWWTEngine:
    def test_end_to_end_answer(self, small_env):
        engine = WWTEngine(small_env.synthetic.corpus)
        wq = query_by_id("country | currency")
        result = engine.answer(wq.query)
        assert result.answer.num_rows > 0
        assert result.answer.header() == ["country", "currency"]
        # A real country/currency pair should surface near the top.
        top = {row.cells[0].lower() for row in result.answer.rows[:20]}
        assert top & {"france", "japan", "germany", "brazil", "india",
                      "china", "canada", "united states"}

    def test_timing_breakdown_complete(self, small_env):
        engine = WWTEngine(small_env.synthetic.corpus)
        result = engine.answer(Query.parse("dog breed"))
        timing = result.timing.as_dict()
        assert set(timing) == {
            "1st Index", "1st Table Read", "2nd Index", "2nd Table Read",
            "Column Map", "Consolidate",
        }
        assert result.timing.total >= result.timing.column_map

    def test_inference_choice_validated(self, small_env):
        with pytest.raises(ValueError):
            WWTEngine(small_env.synthetic.corpus, inference="nope")

    def test_all_inference_engines_run(self, small_env):
        query = Query.parse("name of explorers | nationality")
        for inference in ("none", "table-centric", "alpha-expansion"):
            engine = WWTEngine(small_env.synthetic.corpus, inference=inference)
            result = engine.answer(query)
            assert result.mapping.algorithm


class TestAnswerQuality:
    def test_identical_labelings_have_zero_error(self, small_env):
        wq = query_by_id("country | currency")
        probe = small_env.candidates[wq.query_id]
        gold = small_env.gold(wq)
        assert answer_row_error(wq.query, probe.tables, gold, gold) == 0.0

    def test_empty_vs_gold_is_total_error(self, small_env):
        wq = query_by_id("country | currency")
        probe = small_env.candidates[wq.query_id]
        gold = small_env.gold(wq)
        from repro.core.labels import LabelSpace

        space = LabelSpace(wq.query.q)
        all_nr = {tc: space.nr for tc in gold}
        if answer_rows(wq.query, probe.tables, gold):
            assert answer_row_error(wq.query, probe.tables, all_nr, gold) == 100.0

    def test_rows_projected_by_mapping(self, small_env):
        wq = query_by_id("country | currency")
        probe = small_env.candidates[wq.query_id]
        gold = small_env.gold(wq)
        rows = answer_rows(wq.query, probe.tables, gold)
        for row in rows:
            assert len(row) == 2
