"""Tests for the staged query-execution engine (``repro.exec``).

Covers the generic machinery (spans, context, plan, degradation policy,
cancellation, stage stats) with a deterministic fake clock, then the
acceptance bar of the refactor: with no deadline, executor answers are
bit-identical — rows, scores, mappings, timing stage set — to the
pre-refactor straight-line pipeline (re-implemented verbatim below as the
reference) over the full 59-query workload on all three corpus backends
(monolithic, sharded with k in {1, 2, 4} shards, journaled).
"""

import random

import pytest

from repro.consolidate.merge import consolidate
from repro.consolidate.ranker import rank_answer
from repro.core.model import build_problem
from repro.exec import (
    CancellationToken,
    DeadlineExceeded,
    ExecutionCancelled,
    ExecutionContext,
    ExecutionPlan,
    QueryState,
    SPAN_CACHED,
    SPAN_DEGRADED,
    SPAN_OK,
    SPAN_SKIPPED,
    Span,
    Stage,
    StageAccumulator,
    build_probe_plan,
    build_query_plan,
    percentile,
)
from repro.inference import REGISTRY, get_algorithm
from repro.inference.registry import InferenceRegistry
from repro.pipeline.probe import ProbeConfig, two_stage_probe
from repro.pipeline.wwt import QueryTiming
from repro.service import EngineConfig, WWTService


class FakeClock:
    """Deterministic clock: advances only when told to."""

    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestSpan:
    def build(self):
        root = Span("query")
        a = Span("probe.index1", duration=0.010)
        b = Span("probe.index2", duration=0.005, status=SPAN_SKIPPED)
        c = Span("column_map", duration=0.020, counters={"tables": 4})
        root.children = [a, b, c]
        return root

    def test_find_and_total(self):
        root = self.build()
        assert root.find("column_map").counters == {"tables": 4}
        assert root.find("missing") is None
        assert root.total("probe.index1") == pytest.approx(0.010)
        assert root.total("missing") == 0.0

    def test_leaves_and_stage_names_exclude_skipped(self):
        root = self.build()
        assert [s.name for s in root.leaves()] == [
            "probe.index1", "probe.index2", "column_map",
        ]
        assert root.stage_names() == ["probe.index1", "column_map"]

    def test_degraded_property(self):
        assert self.build().degraded
        ok = Span("query", children=[Span("parse")])
        assert not ok.degraded

    def test_copy_rewrites_status_but_keeps_durations(self):
        root = self.build()
        copied = root.copy(status=SPAN_CACHED)
        assert copied.find("probe.index1").status == SPAN_CACHED
        assert copied.find("probe.index1").duration == pytest.approx(0.010)
        copied.find("column_map").counters["tables"] = 99
        assert root.find("column_map").counters["tables"] == 4  # deep copy

    def test_to_dict_and_format_tree(self):
        root = self.build()
        data = root.to_dict()
        assert data["name"] == "query"
        assert [c["name"] for c in data["children"]] == [
            "probe.index1", "probe.index2", "column_map",
        ]
        assert data["children"][0]["ms"] == pytest.approx(10.0)
        lines = root.format_tree()
        assert lines[0].startswith("query")
        assert any("skipped" in line for line in lines)
        assert any("tables=4" in line for line in lines)


class TestExecutionContext:
    def test_budget_accounting(self):
        clock = FakeClock()
        ctx = ExecutionContext(deadline_ms=50.0, clock=clock)
        assert ctx.remaining_ms == pytest.approx(50.0)
        assert not ctx.out_of_budget
        clock.advance(0.049)
        assert not ctx.out_of_budget
        clock.advance(0.002)
        assert ctx.out_of_budget
        assert ctx.remaining_ms == pytest.approx(-1.0)

    def test_no_deadline_never_expires(self):
        clock = FakeClock()
        ctx = ExecutionContext(clock=clock)
        clock.advance(1e6)
        assert ctx.remaining_ms is None
        assert not ctx.out_of_budget
        assert not ctx.check_deadline()

    def test_invalid_deadline_rejected(self):
        with pytest.raises(ValueError):
            ExecutionContext(deadline_ms=0)
        with pytest.raises(ValueError):
            ExecutionContext(deadline_ms=-5)

    def test_check_deadline_strict_mode_raises(self):
        clock = FakeClock()
        ctx = ExecutionContext(deadline_ms=1.0, degraded_ok=False, clock=clock)
        clock.advance(0.002)
        with pytest.raises(DeadlineExceeded):
            ctx.check_deadline()
        assert ctx.deadline_hit
        # DeadlineExceeded is a TimeoutError (CLI error mapping).
        assert issubclass(DeadlineExceeded, TimeoutError)

    def test_span_nesting_and_durations(self):
        clock = FakeClock()
        ctx = ExecutionContext(clock=clock)
        with ctx.span("outer"):
            clock.advance(0.010)
            with ctx.span("inner"):
                clock.advance(0.002)
                ctx.count("items", 3)
        outer = ctx.root.find("outer")
        inner = ctx.root.find("inner")
        assert outer.duration == pytest.approx(0.012)
        assert inner.duration == pytest.approx(0.002)
        assert inner in outer.children
        assert inner.counters == {"items": 3}
        assert ctx.current is ctx.root  # stack unwound

    def test_skip_marks_degraded(self):
        ctx = ExecutionContext()
        assert not ctx.degraded
        ctx.skip("probe.index2")
        assert ctx.degraded
        span = ctx.root.find("probe.index2")
        assert span.status == SPAN_SKIPPED
        assert span.duration == 0.0

    def test_adopt_grafts_cached_copies(self):
        ctx = ExecutionContext()
        original = Span("probe.index1", duration=0.015, counters={"hits": 9})
        ctx.adopt([original])
        grafted = ctx.root.find("probe.index1")
        assert grafted is not original
        assert grafted.status == SPAN_CACHED
        assert grafted.duration == pytest.approx(0.015)
        assert grafted.counters == {"hits": 9}

    def test_cancellation(self):
        token = CancellationToken()
        ctx = ExecutionContext(token=token)
        ctx.check_cancelled()  # no-op before cancel
        token.cancel()
        assert token.cancelled
        with pytest.raises(ExecutionCancelled):
            ctx.check_cancelled()


def _recording_stage(name, log, cost=0.0, clock=None, **stage_kwargs):
    """A Stage whose body logs its name (and burns fake-clock time)."""

    def fn(ctx, state):
        log.append(name)
        if clock is not None and cost:
            clock.advance(cost)

    return Stage(name, fn, **stage_kwargs)


class TestExecutionPlan:
    def test_runs_stages_in_order(self):
        log = []
        plan = ExecutionPlan(
            [_recording_stage(n, log) for n in ("a", "b", "c")]
        )
        ctx = ExecutionContext()
        plan.run(ctx, None)
        assert log == ["a", "b", "c"]
        assert [s.name for s in ctx.root.children] == ["a", "b", "c"]
        assert not ctx.degraded and not ctx.deadline_hit

    def test_duplicate_stage_names_rejected(self):
        stage = Stage("x", lambda ctx, s: None)
        with pytest.raises(ValueError, match="duplicate stage names"):
            ExecutionPlan([stage, stage])

    def test_skippable_stages_skipped_after_deadline(self):
        clock = FakeClock()
        log = []
        plan = ExecutionPlan([
            _recording_stage("a", log, cost=0.010, clock=clock),
            _recording_stage("b", log, skippable=True),
            _recording_stage("c", log),  # required: runs over budget
        ])
        ctx = ExecutionContext(deadline_ms=5.0, clock=clock)
        plan.run(ctx, None)
        assert log == ["a", "c"]
        assert ctx.degraded and ctx.deadline_hit
        assert ctx.root.find("b").status == SPAN_SKIPPED
        assert ctx.root.find("c").status == SPAN_OK

    def test_fallback_used_after_deadline(self):
        clock = FakeClock()
        log = []

        def fallback(ctx, state):
            log.append("cheap")

        plan = ExecutionPlan([
            _recording_stage("slow", log, cost=0.010, clock=clock),
            Stage("map", lambda ctx, s: log.append("full"),
                  fallback=fallback, fallback_note="fallback=cheap"),
        ])
        ctx = ExecutionContext(deadline_ms=5.0, clock=clock)
        plan.run(ctx, None)
        assert log == ["slow", "cheap"]
        span = ctx.root.find("map")
        assert span.status == SPAN_DEGRADED
        assert span.note == "fallback=cheap"

    def test_within_budget_runs_everything(self):
        clock = FakeClock()
        log = []
        plan = ExecutionPlan([
            _recording_stage("a", log, cost=0.001, clock=clock),
            _recording_stage("b", log, skippable=True),
            Stage("map", lambda ctx, s: log.append("full"),
                  fallback=lambda ctx, s: log.append("cheap")),
        ])
        ctx = ExecutionContext(deadline_ms=100.0, clock=clock)
        plan.run(ctx, None)
        assert log == ["a", "b", "full"]
        assert not ctx.degraded and not ctx.deadline_hit

    def test_strict_mode_raises_between_stages(self):
        clock = FakeClock()
        log = []
        plan = ExecutionPlan([
            _recording_stage("a", log, cost=0.010, clock=clock),
            _recording_stage("b", log, skippable=True),
        ])
        ctx = ExecutionContext(deadline_ms=5.0, degraded_ok=False, clock=clock)
        with pytest.raises(DeadlineExceeded):
            plan.run(ctx, None)
        assert log == ["a"]  # nothing after the deadline check

    def test_cancellation_stops_the_plan(self):
        token = CancellationToken()
        log = []

        def cancel_during_a(ctx, state):
            log.append("a")
            token.cancel()

        plan = ExecutionPlan([
            Stage("a", cancel_during_a),
            _recording_stage("b", log),
        ])
        ctx = ExecutionContext(token=token)
        with pytest.raises(ExecutionCancelled):
            plan.run(ctx, None)
        assert log == ["a"]

    def test_probe_timing_spans_match_plan(self):
        """The shared timing-field mapping is pinned to the plan's actual
        probe stage names — renames must touch both or fail here."""
        from repro.exec.query import PROBE_STAGES
        from repro.pipeline.probe import PROBE_TIMING_SPANS

        assert [span for _, span in PROBE_TIMING_SPANS] == [
            s.name for s in PROBE_STAGES
        ]
        assert [fld for fld, _ in PROBE_TIMING_SPANS] == [
            "index1", "read1", "confidence", "index2", "read2",
        ]

    def test_stage_names(self):
        plan = build_query_plan()
        assert plan.stage_names() == [
            "parse", "probe.index1", "probe.read1", "probe.confidence",
            "probe.index2", "probe.read2", "column_map", "consolidate",
            "rank",
        ]
        assert build_query_plan(include_probe=False).stage_names() == [
            "parse", "column_map", "consolidate", "rank",
        ]
        assert build_probe_plan().stage_names() == [
            "probe.index1", "probe.read1", "probe.confidence",
            "probe.index2", "probe.read2",
        ]


class TestStageStats:
    def test_percentile_nearest_rank(self):
        assert percentile([], 0.5) == 0.0
        assert percentile([3.0], 0.95) == 3.0
        values = [float(i) for i in range(1, 101)]
        assert percentile(values, 0.50) == pytest.approx(50.0, abs=1.0)
        assert percentile(values, 0.95) == pytest.approx(95.0, abs=1.0)

    def test_accumulator_snapshot(self):
        acc = StageAccumulator()
        for v in (0.010, 0.020, 0.030):
            acc.add(v)
        stats = acc.snapshot()
        assert stats.count == 3
        assert stats.total == pytest.approx(0.060)
        assert stats.mean == pytest.approx(0.020)
        assert stats.p50 == pytest.approx(0.020)
        data = stats.to_dict()
        assert set(data) == {"count", "total", "mean", "p50", "p95"}

    def test_reservoir_bounds_memory(self):
        acc = StageAccumulator(reservoir=4)
        for i in range(100):
            acc.add(float(i))
        stats = acc.snapshot()
        assert stats.count == 100  # count/total are exact
        assert stats.total == pytest.approx(sum(range(100)))
        assert stats.p50 >= 96.0  # percentiles over the recent window


class TestRegistryFastest:
    def test_default_registry_fastest_is_non_collective(self):
        name = REGISTRY.fastest()
        assert name == "none"
        assert not REGISTRY.info(name).collective

    def test_cost_hint_orders_candidates(self):
        registry = InferenceRegistry()
        registry.add("slow", lambda p: None, collective=True)
        registry.add("cheap", lambda p: None, collective=True, cost_hint=0.1)
        assert registry.fastest() == "cheap"
        registry.add("tiny", lambda p: None, collective=False, cost_hint=0.1)
        assert registry.fastest() == "tiny"  # tie -> non-collective first

    def test_cost_hint_dominates_collectivity(self):
        # A *cheaper* collective solver still beats a pricier per-table
        # one: collectivity only breaks exact cost ties.
        registry = InferenceRegistry()
        registry.add("pertable", lambda p: None, collective=False,
                     cost_hint=0.5)
        registry.add("msgpass", lambda p: None, collective=True,
                     cost_hint=0.2)
        assert registry.fastest() == "msgpass"

    def test_name_breaks_full_ties_deterministically(self):
        # Equal cost_hint and collectivity -> lexicographic name, so the
        # fallback choice never depends on registration order.
        first = InferenceRegistry()
        first.add("beta", lambda p: None, collective=False, cost_hint=0.1)
        first.add("alpha", lambda p: None, collective=False, cost_hint=0.1)
        second = InferenceRegistry()
        second.add("alpha", lambda p: None, collective=False, cost_hint=0.1)
        second.add("beta", lambda p: None, collective=False, cost_hint=0.1)
        assert first.fastest() == second.fastest() == "alpha"

    def test_empty_registry_raises(self):
        with pytest.raises(KeyError):
            InferenceRegistry().fastest()


# -- bit-identity vs the pre-refactor pipeline ----------------------------


def reference_probe(query, corpus, config, params):
    """The pre-refactor ``two_stage_probe`` body, kept verbatim as the
    equivalence baseline (timings stripped; same RNG discipline)."""
    from repro.inference.base import column_distributions
    from repro.inference.max_marginals import all_max_marginals
    from repro.pipeline.probe import ProbeResult
    from repro.text.tokenize import tokenize

    rng = random.Random(config.seed)

    def _trim(hits):
        if not hits:
            return hits
        floor = hits[0].score * config.min_score_fraction
        if hits[-1].score >= floor:
            return hits
        return [h for h in hits if h.score >= floor]

    stage1_hits = _trim(
        corpus.search(query.all_tokens(), limit=config.stage1_limit)
    )
    stage1_ids = [h.doc_id for h in stage1_hits]
    stage1_tables = corpus.get_many(stage1_ids)
    if not stage1_tables:
        return ProbeResult(
            tables=[], stage1_ids=[], stage2_ids=[], used_second_stage=False
        )

    problem = build_problem(query, stage1_tables, corpus.stats, params)
    distributions = column_distributions(problem, all_max_marginals(problem))
    confidences = []
    for ti in range(len(stage1_tables)):
        best = 0.0
        for tc in problem.table_columns(ti):
            dist = distributions[tc]
            mass = max(dist[l] for l in problem.labels.query_labels())
            best = max(best, mass)
        confidences.append(best)
    ranked = sorted(
        range(len(stage1_tables)), key=lambda i: -confidences[i]
    )
    seeds = [
        stage1_tables[i]
        for i in ranked[: config.num_seed_tables]
        if confidences[i] >= config.seed_confidence
    ]

    stage2_ids = []
    if seeds:
        sample_tokens = []
        all_rows = [row for table in seeds for row in table.body_rows()]
        rng.shuffle(all_rows)
        for row in all_rows[: config.num_sample_rows]:
            for cell in row:
                sample_tokens.extend(tokenize(cell.text))
        probe2 = query.all_tokens() + sample_tokens
        stage2_hits = _trim(corpus.search(probe2, limit=config.stage2_limit))
        seen = set(stage1_ids)
        stage2_ids = [h.doc_id for h in stage2_hits if h.doc_id not in seen]

    tables = stage1_tables + corpus.get_many(stage2_ids)
    return ProbeResult(
        tables=tables,
        stage1_ids=stage1_ids,
        stage2_ids=stage2_ids,
        used_second_stage=bool(stage2_ids),
        seed_table_ids=[t.table_id for t in seeds],
    )


def reference_compute(query, corpus, config):
    """The pre-refactor ``WWTService._compute`` straight line: probe ->
    column map -> consolidate -> rank, no caches, no executor."""
    algorithm = get_algorithm(config.inference)
    probe = reference_probe(query, corpus, config.probe, config.params)
    problem = build_problem(query, probe.tables, corpus.stats, config.params)
    mapping = algorithm(problem)
    mappings = {
        ti: mapping.table_mapping(ti) for ti in mapping.relevant_tables()
    }
    relevance = {ti: mapping.table_relevance_score(ti) for ti in mappings}
    answer = rank_answer(consolidate(query, probe.tables, mappings, relevance))
    return probe, mapping, answer


def answer_fingerprint(probe, mapping, answer):
    """Everything the acceptance bar compares, exact floats included."""
    return {
        "stage1_ids": list(probe.stage1_ids),
        "stage2_ids": list(probe.stage2_ids),
        "seed_table_ids": list(probe.seed_table_ids),
        "labels": dict(mapping.labels),
        "rows": [
            (tuple(r.cells), r.support, r.relevance, tuple(r.source_tables))
            for r in answer.rows
        ],
    }


#: Expected timing stage set — must never drift (Figure 7's schema).
TIMING_STAGES = {
    "1st Index", "1st Table Read", "2nd Index", "2nd Table Read",
    "Column Map", "Consolidate",
}


class TestExecutorBitIdentity:
    """No deadline => executor answers == pre-refactor pipeline answers,
    over the 59-query workload, on every backend."""

    def _check_workload(self, corpus, queries, expected):
        service = WWTService(corpus)
        for wq in queries:
            full = service.answer_full(wq.query)
            got = answer_fingerprint(full.probe, full.mapping, full.answer)
            assert got == expected[wq.query_id], wq.query_id
            assert not full.degraded
            assert set(full.timing.as_dict()) == TIMING_STAGES
        if hasattr(corpus, "close"):
            corpus.close()

    @pytest.fixture(scope="class")
    def expected(self, small_env):
        """Reference fingerprints, computed once on the monolithic corpus
        with the verbatim pre-refactor pipeline (all backends rank
        bit-identically, per the PR 2-4 guarantees)."""
        config = EngineConfig()
        return {
            wq.query_id: answer_fingerprint(
                *reference_compute(wq.query, small_env.synthetic.corpus,
                                   config)
            )
            for wq in small_env.queries
        }

    def test_monolithic(self, small_env, expected):
        assert len(small_env.queries) == 59
        self._check_workload(
            small_env.synthetic.corpus, small_env.queries, expected
        )

    @pytest.mark.parametrize("k", [1, 2, 4])
    def test_sharded(self, small_env, expected, k):
        from repro.index import build_sharded_corpus

        tables = list(small_env.synthetic.corpus.store)
        self._check_workload(
            build_sharded_corpus(tables, k), small_env.queries, expected
        )

    def test_journaled(self, small_env, expected, tmp_path):
        from repro.index import build_sharded_corpus, load_corpus

        tables = list(small_env.synthetic.corpus.store)
        build_sharded_corpus(tables, 2).save(tmp_path / "corpus")
        self._check_workload(
            load_corpus(tmp_path / "corpus"), small_env.queries, expected
        )


class TestProbeThroughExecutor:
    def test_timings_keys_and_accumulation(self, small_env):
        wq = small_env.queries[0]
        timings = {}
        two_stage_probe(
            wq.query, small_env.synthetic.corpus, timings=timings
        )
        assert set(timings) == {
            "index1", "read1", "confidence", "index2", "read2",
        }
        first = dict(timings)
        two_stage_probe(
            wq.query, small_env.synthetic.corpus, timings=timings
        )
        assert timings["index1"] > first["index1"]  # accumulates, not resets

    def test_external_context_records_probe_spans(self, small_env):
        wq = small_env.queries[0]
        ctx = ExecutionContext(root_name="caller")
        result = two_stage_probe(
            wq.query, small_env.synthetic.corpus, context=ctx
        )
        assert result.num_candidates > 0
        names = [s.name for s in ctx.root.children]
        assert names == [
            "probe.index1", "probe.read1", "probe.confidence",
            "probe.index2", "probe.read2",
        ]

    def test_budgeted_probe_degrades_instead_of_erroring(self, small_env):
        clock = FakeClock()
        ctx = ExecutionContext(deadline_ms=1.0, clock=clock)
        clock.advance(1.0)  # budget already gone before the first stage
        wq = small_env.queries[0]
        result = two_stage_probe(
            wq.query, small_env.synthetic.corpus, context=ctx
        )
        assert ctx.degraded
        assert result.tables == []
        assert not result.used_second_stage


class TestServiceDegradation:
    def test_tight_deadline_returns_degraded_flagged_response(self, small_env):
        service = WWTService(
            small_env.synthetic.corpus, EngineConfig(deadline_ms=0.001)
        )
        response = service.answer("country | currency")
        assert response.degraded
        assert "probe.index2" not in response.stages_ran
        assert "rank" in response.stages_ran  # finalizers always run
        assert response.trace is not None
        stats = service.stats()
        assert stats.deadline_hits == 1
        assert stats.degraded_answers == 1
        # The fallback's latency aggregates under its own key — it must
        # not pollute the configured solver's column_map percentiles.
        assert "column_map:degraded" in stats.stages
        assert "column_map" not in stats.stages

    def test_degraded_answers_are_not_cached(self, small_env):
        service = WWTService(
            small_env.synthetic.corpus, EngineConfig(deadline_ms=0.001)
        )
        first = service.answer("country | gdp")
        second = service.answer("country | gdp")
        assert first.degraded and second.degraded
        assert not second.cache_hit  # a degraded answer never parks in cache
        assert service.stats().result_cache.hits == 0

    def test_generous_deadline_never_degrades(self, small_env):
        bounded = WWTService(
            small_env.synthetic.corpus, EngineConfig(deadline_ms=600000.0)
        )
        unbounded = WWTService(small_env.synthetic.corpus)
        a = bounded.answer("country | currency")
        b = unbounded.answer("country | currency")
        assert not a.degraded
        assert [r.cells for r in a.rows] == [r.cells for r in b.rows]
        assert bounded.stats().deadline_hits == 0

    def test_strict_mode_raises_deadline_exceeded(self, small_env):
        service = WWTService(
            small_env.synthetic.corpus,
            EngineConfig(deadline_ms=0.001, degraded_ok=False),
        )
        with pytest.raises(DeadlineExceeded):
            service.answer("dog breed")
        assert service.stats().deadline_hits == 1

    def test_fallback_inference_recorded_in_trace(self, small_env):
        # A budget that survives the probe but not column_map is hard to
        # time reliably; instead check the trace/note contract on the
        # fully degraded path where column_map must use the fallback.
        service = WWTService(
            small_env.synthetic.corpus, EngineConfig(deadline_ms=0.001)
        )
        response = service.answer("dog breed")
        span = response.trace.find("column_map")
        assert span.status == SPAN_DEGRADED
        assert span.note == f"fallback={REGISTRY.fastest()}"

    def test_strict_abort_does_not_pollute_stage_stats(self, small_env):
        service = WWTService(
            small_env.synthetic.corpus,
            EngineConfig(deadline_ms=0.001, degraded_ok=False),
        )
        with pytest.raises(DeadlineExceeded):
            service.answer("country | currency")
        # The plan aborted before its first stage: no stage executed, so
        # nothing (in particular not the root "query" span) may appear
        # in the per-stage aggregates.
        assert service.stats().stages == {}

    def test_fallback_skips_edge_construction(self, small_env):
        """The non-collective fallback never reads cross-table edges, so
        the degraded column_map must not pay to build them."""
        from repro.exec.query import (
            _stage_column_map,
            _stage_column_map_fallback,
        )

        wq = next(
            q for q in small_env.queries
            if small_env.candidates[q.query_id].num_candidates >= 2
        )
        config = EngineConfig()
        state = QueryState(
            query=wq.query,
            corpus=small_env.synthetic.corpus,
            probe_config=config.probe,
            params=config.params,
            inference=config.inference,
            rng=random.Random(config.probe.seed),
        )
        ctx = ExecutionContext()
        build_probe_plan().run(ctx, state)

        with ctx.span("column_map"):
            _stage_column_map_fallback(ctx, state)
        assert state.problem.edges == []
        assert state.fallback_inference == REGISTRY.fastest()
        assert state.answer is None  # mapping only; consolidate not run

        state.algorithm = get_algorithm(config.inference)
        with ctx.span("column_map_full"):
            _stage_column_map(ctx, state)
        assert len(state.problem.edges) > 0  # the full stage does build them

    def test_probe_cached_when_only_column_map_degrades(
        self, small_env, monkeypatch
    ):
        """A probe that ran every stage is cacheable even when a later
        stage fell back — only *skipped probe stages* block the cache."""
        import repro.service.facade as facade_mod
        from repro.exec.query import (
            MAPPING_STAGES,
            PARSE_STAGES,
            PROBE_STAGES,
            _stage_column_map_fallback,
        )

        def degraded_map(ctx, state):
            ctx.mark_degraded()  # emulate a post-probe deadline fallback
            _stage_column_map_fallback(ctx, state)

        plan = ExecutionPlan(
            PARSE_STAGES + PROBE_STAGES
            + (Stage("column_map", degraded_map),) + MAPPING_STAGES[1:],
            name="query",
        )
        monkeypatch.setattr(facade_mod, "_FULL_PLAN", plan)
        service = WWTService(small_env.synthetic.corpus)
        first = service.answer("country | currency")
        assert first.degraded
        assert service.stats().result_cache.size == 0  # answer not cached
        assert service._probe_cache.stats().size == 1  # probe cached

        monkeypatch.undo()
        second = service.answer("country | currency")
        assert not second.degraded
        assert not second.cache_hit  # degraded answer was not reused
        # The probe stages were served from cache, not re-executed.
        assert service.stats().stages["probe.index1"].count == 1
        assert second.timing.index1 == first.timing.index1

    def test_batch_respects_deadline(self, small_env):
        service = WWTService(
            small_env.synthetic.corpus,
            EngineConfig(deadline_ms=0.001, max_workers=2),
        )
        texts = ["country | currency", "dog breed", "country | gdp"]
        responses = service.answer_batch(texts)
        assert all(r.degraded for r in responses)
        assert service.stats().degraded_answers == len(texts)


class TestServiceStageStats:
    def test_per_stage_aggregates_populated(self, small_env):
        service = WWTService(small_env.synthetic.corpus)
        for wq in small_env.queries[:5]:
            service.answer(wq.query)
        stats = service.stats()
        assert set(stats.stages) >= {
            "parse", "probe.index1", "probe.read1", "probe.confidence",
            "probe.index2", "probe.read2", "column_map", "consolidate",
            "rank",
        }
        column_map = stats.stages["column_map"]
        assert column_map.count == 5
        assert column_map.total > 0.0
        assert column_map.p95 >= column_map.p50 >= 0.0
        data = stats.to_dict()
        assert "stages" in data and "deadline_hits" in data
        assert data["stages"]["column_map"]["count"] == 5

    def test_cached_spans_not_double_counted(self, small_env):
        from repro.service import QueryRequest

        service = WWTService(small_env.synthetic.corpus)
        service.answer("country | currency")
        # Result-cache miss but probe-cache hit: probe stages must not be
        # re-counted (they were not re-executed).
        service.answer(
            QueryRequest.parse("country | currency", inference="none")
        )
        stats = service.stats()
        assert stats.stages["probe.index1"].count == 1
        assert stats.stages["column_map"].count == 2

    def test_timing_is_view_over_spans(self, small_env):
        service = WWTService(small_env.synthetic.corpus)
        full = service.answer_full("country | currency")
        rebuilt = QueryTiming.from_spans(full.spans)
        assert rebuilt == full.timing
        assert full.timing.consolidate == pytest.approx(
            full.spans.total("consolidate") + full.spans.total("rank")
        )


class TestQueryStateDefaults:
    def test_parse_stage_fills_defaults(self, small_env):
        state = QueryState(
            text="country | currency",
            corpus=small_env.synthetic.corpus,
            params=EngineConfig().params,
            inference="none",
        )
        ctx = ExecutionContext()
        build_query_plan().run(ctx, state)
        assert str(state.query) == "country | currency"
        assert state.algorithm is get_algorithm("none")
        assert isinstance(state.rng, random.Random)
        assert isinstance(state.probe_config, ProbeConfig)
        assert state.answer is not None
