"""Unit tests for repro.text.similarity."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.text.similarity import (
    column_content_similarity,
    column_similarity,
    header_similarity,
    jaccard,
    weighted_jaccard,
)
from repro.text.tfidf import TermStatistics

values_strategy = st.lists(
    st.text(alphabet="abc xyz", min_size=1, max_size=8), max_size=8
)


class TestJaccard:
    def test_identical(self):
        assert jaccard({"a", "b"}, {"a", "b"}) == 1.0

    def test_disjoint(self):
        assert jaccard({"a"}, {"b"}) == 0.0

    def test_both_empty(self):
        assert jaccard(set(), set()) == 0.0

    def test_half_overlap(self):
        assert math.isclose(jaccard({"a", "b"}, {"b", "c"}), 1 / 3)

    @given(values_strategy, values_strategy)
    def test_symmetric_and_bounded(self, a, b):
        j = jaccard(a, b)
        assert math.isclose(j, jaccard(b, a))
        assert 0.0 <= j <= 1.0


class TestWeightedJaccard:
    def test_normalization_merges_variants(self):
        assert weighted_jaccard(["Abel Tasman"], ["abel  tasman"]) == 1.0

    def test_empty_column(self):
        assert weighted_jaccard([], ["x"]) == 0.0

    def test_idf_downweights_common_values(self):
        stats = TermStatistics()
        for _ in range(50):
            stats.add_document(["yes"])
        stats.add_document(["tasman"])
        # Shared rare value counts more than shared common value.
        rare = weighted_jaccard(["tasman", "alpha"], ["tasman", "beta"], stats)
        common = weighted_jaccard(["yes", "alpha"], ["yes", "beta"], stats)
        assert rare > common


class TestColumnSimilarity:
    def test_identical_columns(self):
        vals = ["Vasco da Gama", "Abel Tasman"]
        assert column_content_similarity(vals, vals) > 0.99

    def test_disjoint_columns(self):
        assert column_content_similarity(["aa bb"], ["cc dd"]) == 0.0

    def test_header_similarity_matches_tokens(self):
        assert header_similarity(["name"], ["name"]) == 1.0
        assert header_similarity(["name"], ["country"]) == 0.0

    def test_content_weight_validation(self):
        with pytest.raises(ValueError):
            column_similarity(["a"], ["a"], [], [], content_weight=1.5)

    def test_content_dominates_by_default(self):
        # Same content, different headers: similarity stays high.
        vals = ["alpha", "beta", "gamma"]
        sim = column_similarity(vals, vals, ["name"], ["title"])
        assert sim >= 0.8

    def test_headers_break_content_ties(self):
        vals_a = ["alpha", "beta"]
        vals_b = ["alpha", "beta"]
        with_match = column_similarity(vals_a, vals_b, ["name"], ["name"])
        without = column_similarity(vals_a, vals_b, ["name"], ["country"])
        assert with_match > without

    @given(values_strategy, values_strategy)
    def test_bounded(self, a, b):
        sim = column_content_similarity(a, b)
        assert 0.0 <= sim <= 1.0 + 1e-9
