"""Tests for dedup, consolidation, and ranking (Section 2.2.3)."""

import random

import pytest

from repro.consolidate.dedup import (
    _CELL_SIM_THRESHOLD,
    cells_compatible,
    rows_duplicate,
    subject_key,
)
from repro.consolidate.merge import AnswerRow, consolidate
from repro.consolidate.ranker import rank_answer, rank_rows
from repro.query.model import Query
from repro.tables.table import WebTable


class TestDedup:
    def test_subject_key_normalizes(self):
        assert subject_key(" Vasco  da Gama ") == subject_key("vasco da gama")

    def test_cells_compatible_empty_wildcard(self):
        assert cells_compatible("", "anything")
        assert cells_compatible("x", "")

    def test_cells_compatible_exact(self):
        assert cells_compatible("Dutch", "dutch")
        assert not cells_compatible("Dutch", "Portuguese")

    def test_cells_compatible_token_overlap(self):
        assert cells_compatible("Sea route to India", "sea route india")

    def test_rows_duplicate_same_subject(self):
        a = ["Abel Tasman", "Dutch", "Oceania"]
        b = ["abel tasman", "", "Oceania"]
        assert rows_duplicate(a, b)

    def test_rows_not_duplicate_different_subject(self):
        a = ["Abel Tasman", "Dutch", "Oceania"]
        b = ["James Cook", "Dutch", "Oceania"]
        assert not rows_duplicate(a, b)

    def test_rows_not_duplicate_conflicting_attributes(self):
        a = ["Abel Tasman", "Dutch", "Oceania"]
        b = ["Abel Tasman", "Portuguese", "Oceania"]
        assert not rows_duplicate(a, b)

    def test_width_mismatch(self):
        assert not rows_duplicate(["a", "b"], ["a"])

    def test_empty_subjects_never_duplicate(self):
        assert not rows_duplicate(["", "x"], ["", "x"])

    def test_similarity_threshold_boundary(self):
        """Token Jaccard exactly at ``_CELL_SIM_THRESHOLD`` is compatible;
        just below is not."""
        assert _CELL_SIM_THRESHOLD == pytest.approx(0.6)
        # |{a,b,c} & {a,b,c,d,e}| / |union| = 3/5 = 0.6 -> compatible.
        assert cells_compatible("alpha beta gamma",
                                "alpha beta gamma delta eps")
        # 2/4 = 0.5 < 0.6 -> incompatible.
        assert not cells_compatible("alpha beta", "alpha beta gamma delta")


class TestConsolidate:
    def make_tables(self):
        t0 = WebTable.from_rows(
            [
                ["Abel Tasman", "Dutch", "Oceania"],
                ["Vasco da Gama", "Portuguese", "Sea route to India"],
            ],
            header=["Name", "Nationality", "Areas"],
            table_id="t0",
        )
        t1 = WebTable.from_rows(
            [
                ["Sea route to India", "Vasco da Gama"],
                ["Caribbean", "Christopher Columbus"],
            ],
            header=["Exploration", "Who"],
            table_id="t1",
        )
        return [t0, t1]

    def test_merges_duplicates_across_tables(self):
        query = Query.parse("explorer | areas")
        tables = self.make_tables()
        mappings = {0: {0: 1, 2: 2}, 1: {1: 1, 0: 2}}
        answer = consolidate(query, tables, mappings)
        subjects = {row.cells[0] for row in answer.rows}
        assert "Vasco da Gama" in subjects
        assert "Christopher Columbus" in subjects
        vasco = next(r for r in answer.rows if r.cells[0] == "Vasco da Gama")
        assert vasco.support == 2
        assert set(vasco.source_tables) == {"t0", "t1"}

    def test_missing_query_columns_left_empty(self):
        query = Query.parse("explorer | nationality | areas")
        tables = self.make_tables()
        answer = consolidate(query, tables, {1: {1: 1, 0: 3}})
        row = answer.rows[0]
        assert row.cells[1] == ""  # nationality absent from t1

    def test_duplicate_fills_empty_cells(self):
        query = Query.parse("explorer | nationality | areas")
        tables = self.make_tables()
        mappings = {1: {1: 1, 0: 3}, 0: {0: 1, 1: 2, 2: 3}}
        answer = consolidate(query, tables, mappings)
        vasco = next(r for r in answer.rows if "Vasco" in r.cells[0])
        assert vasco.cells[1] == "Portuguese"  # filled from t0

    def test_empty_mapping_ignored(self):
        query = Query.parse("explorer")
        answer = consolidate(query, self.make_tables(), {0: {}})
        assert answer.num_rows == 0

    def test_header_is_query_columns(self):
        query = Query.parse("explorer | areas")
        answer = consolidate(query, self.make_tables(), {})
        assert answer.header() == ["explorer", "areas"]

    def test_ragged_source_rows_are_padded(self):
        """Rows shorter than the table width consolidate as empty cells
        (the WebTable grid pads), not as an error."""
        ragged = WebTable.from_rows(
            [
                ["Abel Tasman", "Dutch", "Oceania"],
                ["Vasco da Gama"],  # short row
                ["James Cook", "British"],  # medium row
            ],
            header=["Name", "Nationality", "Areas"],
            table_id="ragged",
        )
        query = Query.parse("explorer | nationality | areas")
        answer = consolidate(query, [ragged], {0: {0: 1, 1: 2, 2: 3}})
        by_subject = {r.cells[0]: r.cells for r in answer.rows}
        assert by_subject["Vasco da Gama"] == ["Vasco da Gama", "", ""]
        assert by_subject["James Cook"] == ["James Cook", "British", ""]

    def test_mapping_beyond_row_width_projects_empty(self):
        """A mapping referencing a column the table does not have (stale
        mapping, corrupted input) yields empty cells, not IndexError."""
        query = Query.parse("explorer | areas")
        tables = self.make_tables()  # t0 is 3 columns wide
        answer = consolidate(query, tables, {0: {0: 1, 7: 2}})
        assert answer.num_rows > 0
        for row in answer.rows:
            assert row.cells[1] == ""

    def test_all_empty_subject_cells(self):
        """Rows whose subject cell is empty never merge with each other
        (empty subjects are not evidence of identity) and rows that are
        empty on every query column are dropped."""
        table = WebTable.from_rows(
            [
                ["", "Dutch"],
                ["", "Portuguese"],
                ["", ""],  # fully empty -> dropped
            ],
            header=["Name", "Nationality"],
            table_id="t-empty",
        )
        query = Query.parse("explorer | nationality")
        answer = consolidate(query, [table], {0: {0: 1, 1: 2}})
        assert answer.num_rows == 2  # the two non-empty rows, unmerged
        assert all(row.support == 1 for row in answer.rows)
        assert {row.cells[1] for row in answer.rows} == {
            "Dutch", "Portuguese",
        }


class TestRanker:
    def test_support_dominates(self):
        rows = [
            AnswerRow(cells=["b", "1"], support=1, relevance=1.0),
            AnswerRow(cells=["a", "2"], support=3, relevance=0.1),
        ]
        ranked = rank_rows(rows)
        assert ranked[0].cells[0] == "a"

    def test_relevance_breaks_support_ties(self):
        rows = [
            AnswerRow(cells=["low", "1"], support=2, relevance=0.2),
            AnswerRow(cells=["high", "2"], support=2, relevance=0.9),
        ]
        assert rank_rows(rows)[0].cells[0] == "high"

    def test_completeness_breaks_further_ties(self):
        rows = [
            AnswerRow(cells=["x", ""], support=1, relevance=0.5),
            AnswerRow(cells=["y", "full"], support=1, relevance=0.5),
        ]
        assert rank_rows(rows)[0].cells[0] == "y"

    def test_deterministic_final_tie_break(self):
        rows = [
            AnswerRow(cells=["zeta", "1"], support=1, relevance=0.5),
            AnswerRow(cells=["alpha", "1"], support=1, relevance=0.5),
        ]
        assert [r.cells[0] for r in rank_rows(rows)] == ["alpha", "zeta"]

    def test_tie_break_is_input_order_independent(self):
        """Fully tied rows order by subject key, so any input permutation
        ranks identically (the determinism the bit-identity tests rely
        on)."""
        rows = [
            AnswerRow(cells=[name, "x"], support=2, relevance=0.5)
            for name in ("delta", "alpha", "charlie", "bravo")
        ]
        expected = ["alpha", "bravo", "charlie", "delta"]
        rng = random.Random(7)
        for _ in range(5):
            shuffled = list(rows)
            rng.shuffle(shuffled)
            assert [r.cells[0] for r in rank_rows(shuffled)] == expected

    def test_empty_cells_rank_last_and_do_not_crash(self):
        rows = [
            AnswerRow(cells=[], support=1, relevance=0.5),
            AnswerRow(cells=["alpha"], support=1, relevance=0.5),
        ]
        ranked = rank_rows(rows)
        # Completeness ranks the cell-less row below the filled one, and
        # its empty-key tie-break must not raise on r.cells[0].
        assert [r.cells for r in ranked] == [["alpha"], []]

    def test_rank_answer_in_place(self):
        from repro.consolidate.merge import AnswerTable

        answer = AnswerTable(query=Query.parse("a"))
        answer.rows = [
            AnswerRow(cells=["b"], support=1),
            AnswerRow(cells=["a"], support=2),
        ]
        rank_answer(answer)
        assert answer.rows[0].cells == ["a"]
