"""Unit tests for repro.tables.table (WebTable model)."""

import pytest

from repro.tables.table import Cell, CellFormat, ContextSnippet, WebTable


def make_table():
    grid = [
        [Cell("Explorers", CellFormat(bold=True)), Cell(""), Cell("")],
        [Cell("Name", CellFormat(is_th=True)), Cell("Nationality", CellFormat(is_th=True)),
         Cell("Areas", CellFormat(is_th=True))],
        [Cell("Abel Tasman"), Cell("Dutch"), Cell("Oceania")],
        [Cell("Vasco da Gama"), Cell("Portuguese"), Cell("Sea route to India")],
    ]
    return WebTable(
        grid=grid,
        num_title_rows=1,
        num_header_rows=1,
        context=[ContextSnippet("List of explorers", 0.9)],
        url="http://example.com",
        table_id="t1",
        page_title="Explorers - wiki",
    )


class TestShape:
    def test_counts(self):
        t = make_table()
        assert t.num_rows == 4
        assert t.num_cols == 3
        assert t.num_body_rows == 2

    def test_ragged_rows_padded(self):
        t = WebTable(grid=[[Cell("a")], [Cell("b"), Cell("c")]])
        assert t.num_cols == 2
        assert t.grid[0][1].is_empty()

    def test_invalid_row_counts_raise(self):
        with pytest.raises(ValueError):
            WebTable(grid=[[Cell("a")]], num_header_rows=2)
        with pytest.raises(ValueError):
            WebTable(grid=[[Cell("a")]], num_title_rows=-1)


class TestSections:
    def test_title_text(self):
        assert make_table().title_text() == "Explorers"

    def test_header_tokens(self):
        t = make_table()
        assert t.header_tokens(0, 0) == ["name"]
        assert t.column_header_tokens(1) == ["nationality"]

    def test_body_rows(self):
        t = make_table()
        assert len(t.body_rows()) == 2
        assert t.body_cell(1, 0).text == "Vasco da Gama"

    def test_column_values_skips_empty(self):
        grid = [[Cell("h")], [Cell("x")], [Cell("")], [Cell("y")]]
        t = WebTable(grid=grid, num_header_rows=1)
        assert t.column_values(0) == ["x", "y"]


class TestFields:
    def test_header_field_includes_title(self):
        text = make_table().field_text("header")
        assert "Name" in text and "Explorers" in text

    def test_context_field_includes_page_title(self):
        text = make_table().field_text("context")
        assert "List of explorers" in text and "wiki" in text

    def test_content_field_is_body_only(self):
        text = make_table().field_text("content")
        assert "Abel Tasman" in text
        assert "Name" not in text

    def test_unknown_field_raises(self):
        with pytest.raises(KeyError):
            make_table().field_text("nope")


class TestCell:
    def test_numeric_detection(self):
        assert Cell("1,234").is_numeric()
        assert Cell("12.5%").is_numeric()
        assert Cell("$3.99").is_numeric()
        assert not Cell("12b").is_numeric()
        assert not Cell("").is_numeric()

    def test_capitalized(self):
        assert Cell("Name Of Explorer").is_capitalized()
        assert not Cell("name of explorer").is_capitalized()
        assert not Cell("123").is_capitalized()

    def test_emphasis_count(self):
        fmt = CellFormat(is_th=True, bold=True)
        assert fmt.emphasis_count() == 2


class TestSerialization:
    def test_roundtrip(self):
        t = make_table()
        clone = WebTable.from_dict(t.to_dict())
        assert clone.table_id == t.table_id
        assert clone.num_title_rows == t.num_title_rows
        assert clone.num_header_rows == t.num_header_rows
        assert clone.num_cols == t.num_cols
        assert clone.grid[1][0].fmt.is_th
        assert clone.context[0].text == "List of explorers"
        assert clone.page_title == t.page_title

    def test_from_rows_convenience(self):
        t = WebTable.from_rows([["a", "1"], ["b", "2"]], header=["N", "V"], table_id="x")
        assert t.num_header_rows == 1
        assert t.column_values(1) == ["1", "2"]
        assert t.grid[0][0].fmt.is_th
