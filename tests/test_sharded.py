"""Tests for ``repro.index.sharded``: partitioning, scatter-gather
equivalence, and directory persistence."""

import json
import math
import random

import pytest

from repro.index import (
    CorpusProtocol,
    IndexedCorpus,
    InvertedIndex,
    JournaledCorpus,
    ShardedCorpus,
    build_corpus_index,
    build_sharded_corpus,
    load_corpus,
    shard_of,
)
from repro.pipeline.probe import ProbeConfig, two_stage_probe
from repro.query.workload import WORKLOAD
from repro.tables.table import WebTable


def make_tables(n=12, prefix="t"):
    return [
        WebTable.from_rows(
            [[f"val{i}a", f"{i}"], [f"val{i}b", f"{i + 1}"]],
            header=["name", "rank"],
            table_id=f"{prefix}{i}",
        )
        for i in range(n)
    ]


@pytest.fixture(scope="module")
def corpus_tables(small_env):
    """The small shared environment's extracted tables, in index order."""
    return list(small_env.synthetic.corpus.store)


@pytest.fixture(scope="module")
def sharded_by_k(corpus_tables):
    """ShardedCorpus per shard count, built once for the module."""
    return {k: build_sharded_corpus(corpus_tables, k) for k in (1, 2, 4)}


class TestShardAssignment:
    def test_stable_and_in_range(self):
        for num_shards in (1, 2, 4, 7):
            for i in range(50):
                s = shard_of(f"table_{i}", num_shards)
                assert 0 <= s < num_shards
                assert s == shard_of(f"table_{i}", num_shards)

    def test_partition_covers_all_tables(self, corpus_tables, sharded_by_k):
        for k, sharded in sharded_by_k.items():
            assert sharded.num_shards == k
            assert sharded.num_tables == len(corpus_tables)
            assert sum(sharded.shard_sizes()) == len(corpus_tables)
            assert sorted(sharded.ids()) == sorted(
                t.table_id for t in corpus_tables
            )

    def test_spreads_across_shards(self, sharded_by_k):
        # Not a uniformity proof — just that CRC32 doesn't collapse the
        # corpus onto one shard.
        assert all(size > 0 for size in sharded_by_k[4].shard_sizes())


class TestProtocolConformance:
    def test_both_backends_satisfy_protocol(self, small_env, sharded_by_k):
        assert isinstance(small_env.synthetic.corpus, CorpusProtocol)
        assert isinstance(sharded_by_k[2], CorpusProtocol)

    def test_monolithic_delegation(self, small_env):
        corpus = small_env.synthetic.corpus
        some_id = corpus.ids()[0]
        assert corpus.get_table(some_id).table_id == some_id
        assert [t.table_id for t in corpus.get_many([some_id])] == [some_id]
        hits = corpus.search(["country"], limit=5)
        direct = corpus.index.search(["country"], limit=5)
        assert [(h.doc_id, h.score) for h in hits] == [
            (h.doc_id, h.score) for h in direct
        ]

    def test_sharded_table_access(self, corpus_tables, sharded_by_k):
        sharded = sharded_by_k[4]
        ids = [t.table_id for t in corpus_tables[:5]]
        assert [t.table_id for t in sharded.get_many(ids)] == ids
        assert sharded.get_table(ids[0]).table_id == ids[0]
        assert ids[0] in sharded
        assert "no_such_table" not in sharded
        assert sharded.get_many(["no_such_table", ids[1]]) == [
            sharded.get_table(ids[1])
        ]
        with pytest.raises(KeyError):
            sharded.get_table("no_such_table")


class TestRankingEquivalence:
    """ShardedCorpus must reproduce monolithic ranking, not approximate it."""

    @pytest.mark.parametrize("k", [1, 2, 4])
    def test_workload_search_identical(self, small_env, sharded_by_k, k):
        """Property over the full 59-query workload: same hits, same scores."""
        mono = small_env.synthetic.corpus
        sharded = sharded_by_k[k]
        for wq in WORKLOAD:
            tokens = wq.query.all_tokens()
            expected = mono.search(tokens, limit=60)
            got = sharded.search(tokens, limit=60)
            assert [h.doc_id for h in got] == [
                h.doc_id for h in expected
            ], wq.query_id
            for e, g in zip(expected, got):
                assert g.score == pytest.approx(e.score, abs=1e-9), wq.query_id

    def test_global_idf_matches_monolithic(self, small_env, sharded_by_k):
        mono = small_env.synthetic.corpus
        for term in ("country", "currency", "dog", "zzz_unseen"):
            assert sharded_by_k[4].global_idf(term) == pytest.approx(
                mono.index.idf(term), abs=1e-12
            )

    def test_containment_probe_identical(self, small_env, sharded_by_k):
        mono = small_env.synthetic.corpus
        for terms in (["country"], ["country", "currency"], ["zzz_unseen"]):
            for fields in (("header", "context"), ("content",)):
                assert sharded_by_k[4].docs_containing_all(
                    terms, fields
                ) == mono.docs_containing_all(terms, fields)

    @pytest.mark.parametrize("k", [2, 4])
    def test_two_stage_probe_identical(self, small_env, sharded_by_k, k):
        mono = small_env.synthetic.corpus
        config = ProbeConfig(seed=9)
        for wq in WORKLOAD[:8]:
            a = two_stage_probe(wq.query, mono, config)
            b = two_stage_probe(wq.query, sharded_by_k[k], config)
            assert a.stage1_ids == b.stage1_ids, wq.query_id
            assert a.stage2_ids == b.stage2_ids, wq.query_id
            assert a.used_second_stage == b.used_second_stage
            assert [t.table_id for t in a.tables] == [
                t.table_id for t in b.tables
            ]

    def test_parallel_scatter_matches_serial(self, corpus_tables):
        serial = build_sharded_corpus(corpus_tables, 4, probe_workers=1)
        parallel = build_sharded_corpus(corpus_tables, 4, probe_workers=3)
        for wq in WORKLOAD[::7]:
            tokens = wq.query.all_tokens()
            a = serial.search(tokens, limit=40)
            b = parallel.search(tokens, limit=40)
            assert [(h.doc_id, h.score) for h in a] == [
                (h.doc_id, h.score) for h in b
            ]


class TestPersistence:
    def test_sharded_round_trip(self, corpus_tables, sharded_by_k, tmp_path):
        sharded = sharded_by_k[4]
        path = sharded.save(tmp_path / "corpus")
        loaded = load_corpus(path, probe_workers=2)
        # load_corpus wraps the snapshot in a mutable JournaledCorpus;
        # with an empty journal it is a transparent front for the base.
        assert isinstance(loaded, JournaledCorpus)
        assert isinstance(loaded.base, ShardedCorpus)
        assert loaded.num_shards == 4
        assert loaded.num_tables == sharded.num_tables
        assert loaded.stats.num_docs == sharded.stats.num_docs
        config = ProbeConfig(seed=1)
        for wq in WORKLOAD[:4]:
            a = two_stage_probe(wq.query, sharded, config)
            b = two_stage_probe(wq.query, loaded, config)
            assert a.stage1_ids == b.stage1_ids
            assert a.stage2_ids == b.stage2_ids

    def test_monolithic_round_trip(self, tmp_path):
        corpus = build_corpus_index(make_tables(8))
        corpus.save(tmp_path / "mono")
        loaded = load_corpus(tmp_path / "mono")
        assert isinstance(loaded, JournaledCorpus)
        assert isinstance(loaded.base, IndexedCorpus)
        assert loaded.ids() == corpus.ids()  # insertion order preserved
        assert loaded.stats.num_docs == corpus.stats.num_docs
        a = corpus.search(["name", "rank"], limit=10)
        b = loaded.search(["name", "rank"], limit=10)
        assert [(h.doc_id, h.score) for h in a] == [
            (h.doc_id, h.score) for h in b
        ]

    def test_build_corpus_index_num_shards_and_save(self, tmp_path):
        tables = make_tables(10)
        corpus = build_corpus_index(
            tables, num_shards=3, save=tmp_path / "built"
        )
        assert isinstance(corpus, ShardedCorpus)
        manifest = json.loads(
            (tmp_path / "built" / "manifest.json").read_text()
        )
        assert manifest["kind"] == "sharded"
        assert manifest["num_shards"] == 3
        assert manifest["num_tables"] == 10
        reloaded = load_corpus(tmp_path / "built")
        assert sorted(reloaded.ids()) == sorted(t.table_id for t in tables)

    def test_resave_replaces_directory_without_stale_shards(self, tmp_path):
        tables = make_tables(12)
        build_sharded_corpus(tables, 4).save(tmp_path / "c")
        assert (tmp_path / "c" / "shard-0003").is_dir()
        build_sharded_corpus(tables, 2).save(tmp_path / "c")
        assert not (tmp_path / "c" / "shard-0002").exists()
        assert not (tmp_path / "c" / "shard-0003").exists()
        loaded = load_corpus(tmp_path / "c")
        assert loaded.num_shards == 2
        assert loaded.num_tables == 12
        # Monolithic re-save over a sharded dir replaces it wholesale.
        build_corpus_index(tables).save(tmp_path / "c")
        assert not (tmp_path / "c" / "shard-0001").exists()
        assert isinstance(load_corpus(tmp_path / "c").base, IndexedCorpus)
        # The atomic-swap scaffolding must not leak siblings.
        assert sorted(p.name for p in tmp_path.iterdir()) == ["c"]

    def test_interrupted_save_backup_is_restored_not_deleted(self, tmp_path):
        # Simulate a crash between the two renames: the corpus survives
        # only as the backup sibling.  A retried save must restore it, and
        # must not destroy it while writing the new corpus.
        tables = make_tables(6)
        build_corpus_index(tables, save=tmp_path / "c")
        (tmp_path / "c").rename(tmp_path / ".c.replaced")
        assert not (tmp_path / "c").exists()
        build_corpus_index(tables, num_shards=2, save=tmp_path / "c")
        assert not (tmp_path / ".c.replaced").exists()
        assert load_corpus(tmp_path / "c").num_shards == 2

    def test_malformed_shard_entries_rejected(self, tmp_path):
        build_corpus_index(make_tables(2), save=tmp_path / "c")
        manifest_path = tmp_path / "c" / "manifest.json"
        manifest = json.loads(manifest_path.read_text())
        manifest["shards"] = [{"num_tables": 2}]  # missing "dir"
        manifest_path.write_text(json.dumps(manifest))
        with pytest.raises(ValueError, match="malformed 'shards'"):
            load_corpus(tmp_path / "c")

    def test_corrupt_shard_snapshot_raises_valueerror(self, tmp_path):
        build_corpus_index(make_tables(3), save=tmp_path / "c")
        (tmp_path / "c" / "shard-0000" / "index.bin").write_bytes(b"junk")
        with pytest.raises(ValueError, match="index.bin"):
            load_corpus(tmp_path / "c").search(["country"])

    def test_corrupt_json_shard_snapshot_raises_valueerror(self, tmp_path):
        build_corpus_index(make_tables(3), save=tmp_path / "c",
                           index_format="json")
        (tmp_path / "c" / "shard-0000" / "index.json").write_text("{}")
        with pytest.raises(ValueError, match="corrupt index snapshot"):
            load_corpus(tmp_path / "c")

    def test_corrupt_stats_raises_valueerror(self, tmp_path):
        build_corpus_index(make_tables(3), save=tmp_path / "c")
        (tmp_path / "c" / "stats.json").write_text("{}")
        with pytest.raises(ValueError, match="corrupt term statistics"):
            load_corpus(tmp_path / "c")

    def test_build_corpus_index_forwards_probe_workers(self):
        corpus = build_corpus_index(
            make_tables(8), num_shards=2, probe_workers=2
        )
        assert corpus.probe_workers == 2
        assert corpus._executor is not None

    def test_load_rejects_non_corpus_dir(self, tmp_path):
        with pytest.raises(ValueError, match="not a persisted corpus"):
            load_corpus(tmp_path)

    def test_load_rejects_bad_version(self, tmp_path):
        build_corpus_index(make_tables(2), save=tmp_path / "c")
        manifest_path = tmp_path / "c" / "manifest.json"
        manifest = json.loads(manifest_path.read_text())
        manifest["version"] = 99
        manifest_path.write_text(json.dumps(manifest))
        with pytest.raises(ValueError, match="unsupported version"):
            load_corpus(tmp_path / "c")

    def test_monolithic_loader_rejects_sharded_dir(self, tmp_path):
        build_corpus_index(make_tables(4), num_shards=2, save=tmp_path / "s")
        with pytest.raises(ValueError, match="sharded"):
            IndexedCorpus.load(tmp_path / "s")


class TestInvertedIndexSnapshot:
    def test_round_trip_preserves_search_and_postings(self):
        index = InvertedIndex()
        index.add_text_document(
            "d1", {"header": "Country Currency", "content": "france euro"}
        )
        index.add_text_document(
            "d2", {"header": "Country Capital", "content": "france paris"}
        )
        restored = InvertedIndex.from_dict(index.to_dict())
        assert restored.num_docs == 2
        assert restored.postings("content", "france") == index.postings(
            "content", "france"
        )
        a = index.search(["country", "currency"])
        b = restored.search(["country", "currency"])
        assert [(h.doc_id, h.score) for h in a] == [
            (h.doc_id, h.score) for h in b
        ]
        assert restored.docs_containing_all(
            ["france"], ["content"]
        ) == index.docs_containing_all(["france"], ["content"])

    def test_snapshot_is_json_safe(self):
        index = InvertedIndex()
        index.add_text_document("d1", {"header": "a b a"})
        data = json.loads(json.dumps(index.to_dict()))
        assert InvertedIndex.from_dict(data).idf("a") == index.idf("a")


class TestShardedValidation:
    def test_empty_shard_list_rejected(self):
        from repro.text.tfidf import TermStatistics

        with pytest.raises(ValueError, match="at least one shard"):
            ShardedCorpus([], TermStatistics())

    def test_bad_workers_rejected(self, corpus_tables):
        with pytest.raises(ValueError, match="probe_workers"):
            build_sharded_corpus(corpus_tables[:4], 2, probe_workers=0)

    def test_bad_shard_count_rejected(self):
        with pytest.raises(ValueError, match="num_shards"):
            build_sharded_corpus(make_tables(2), 0)

    def test_empty_corpus_searches_empty(self):
        sharded = build_sharded_corpus([], 2)
        assert sharded.search(["anything"]) == []
        assert sharded.num_tables == 0

    def test_global_idf_expression(self, corpus_tables):
        sharded = build_sharded_corpus(corpus_tables, 3)
        df = sum(
            s.index.document_frequency("country") for s in sharded.shards
        )
        expected = 1.0 + math.log(len(corpus_tables) / (df + 1.0))
        assert sharded.global_idf("country") == pytest.approx(expected)

    def test_arbitrary_partition_rejected(self):
        # Gluing two independently built corpora together would break
        # shard_of() routing; the constructor must refuse it.
        from repro.index import build_corpus_index as build

        half_a = build(make_tables(4, prefix="a"))
        half_b = build(make_tables(4, prefix="b"))
        with pytest.raises(ValueError, match="hashes to shard"):
            ShardedCorpus([half_a, half_b], half_a.stats)

    def test_close_shuts_down_executor_and_falls_back_serial(
        self, corpus_tables
    ):
        with build_sharded_corpus(corpus_tables, 4, probe_workers=2) as c:
            assert c._executor is not None
            before = c.search(["country"], limit=10)
        assert c._executor is None
        c.close()  # idempotent
        after = c.search(["country"], limit=10)  # serial fallback still works
        assert [(h.doc_id, h.score) for h in before] == [
            (h.doc_id, h.score) for h in after
        ]


class TestProbeDeterminism:
    """Satellite: stage-2 row sampling must be seed-reproducible."""

    def test_same_seed_same_result(self, small_env):
        corpus = small_env.synthetic.corpus
        wq = WORKLOAD[0]
        config = ProbeConfig(seed=123)
        a = two_stage_probe(wq.query, corpus, config)
        b = two_stage_probe(wq.query, corpus, config)
        assert a.stage1_ids == b.stage1_ids
        assert a.stage2_ids == b.stage2_ids
        assert a.seed_table_ids == b.seed_table_ids

    def test_explicit_rng_matches_config_seed(self, small_env):
        corpus = small_env.synthetic.corpus
        wq = WORKLOAD[0]
        config = ProbeConfig(seed=123)
        a = two_stage_probe(wq.query, corpus, config)
        b = two_stage_probe(
            wq.query, corpus, config, rng=random.Random(123)
        )
        assert a.stage2_ids == b.stage2_ids

    def test_concurrent_probes_reproducible(self, sharded_by_k):
        """Sharded scatter-gather in flight must not perturb sampling."""
        from concurrent.futures import ThreadPoolExecutor

        corpus = sharded_by_k[4]
        config = ProbeConfig(seed=5)
        queries = [wq.query for wq in WORKLOAD[:6]]
        baseline = [two_stage_probe(q, corpus, config) for q in queries]
        with ThreadPoolExecutor(max_workers=4) as pool:
            concurrent = list(
                pool.map(lambda q: two_stage_probe(q, corpus, config), queries)
            )
        for a, b in zip(baseline, concurrent):
            assert a.stage1_ids == b.stage1_ids
            assert a.stage2_ids == b.stage2_ids
