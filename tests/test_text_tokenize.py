"""Unit tests for repro.text.tokenize."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.text.tokenize import (
    STOP_WORDS,
    ngrams,
    normalize_cell,
    tokenize,
    tokenize_keep_stopwords,
)


class TestTokenize:
    def test_basic_split(self):
        assert tokenize_keep_stopwords("Hello World") == ["hello", "world"]

    def test_punctuation_split(self):
        assert tokenize_keep_stopwords("a,b;c|d") == ["a", "b", "c", "d"]

    def test_numbers_kept(self):
        assert tokenize("height 4808 m") == ["height", "4808", "m"]

    def test_stopwords_removed(self):
        assert tokenize("the name of the explorer") == ["name", "explorer"]

    def test_empty_string(self):
        assert tokenize("") == []
        assert tokenize_keep_stopwords("") == []

    def test_whitespace_only(self):
        assert tokenize("  \t\n ") == []

    def test_mixed_case_folds(self):
        assert tokenize("Nobel PRIZE Winner") == ["nobel", "prize", "winner"]

    def test_hyphenated_splits(self):
        assert tokenize("pre-production") == ["pre", "production"]

    def test_stopword_constant_lowercase(self):
        assert all(w == w.lower() for w in STOP_WORDS)

    @given(st.text())
    def test_tokens_always_lowercase_alnum(self, text):
        for tok in tokenize(text):
            assert tok == tok.lower()
            assert tok.isalnum()

    @given(st.text())
    def test_tokenize_subset_of_keep_stopwords(self, text):
        # tokenize() stems; compare against the stemmed full stream.
        from repro.text.tokenize import stem

        full = {stem(t) for t in tokenize_keep_stopwords(text)}
        assert all(t in full for t in tokenize(text))

    @given(st.text())
    def test_idempotent_on_joined_output(self, text):
        once = tokenize_keep_stopwords(text)
        twice = tokenize_keep_stopwords(" ".join(once))
        assert once == twice


class TestNgrams:
    def test_bigrams(self):
        assert ngrams(["a", "b", "c"], 2) == [("a", "b"), ("b", "c")]

    def test_n_longer_than_input(self):
        assert ngrams(["a"], 2) == []

    def test_unigrams(self):
        assert ngrams(["a", "b"], 1) == [("a",), ("b",)]

    def test_invalid_n(self):
        with pytest.raises(ValueError):
            ngrams(["a"], 0)


class TestNormalizeCell:
    def test_case_and_space(self):
        assert normalize_cell(" Vasco  da Gama.") == normalize_cell("vasco da gama")

    def test_empty(self):
        assert normalize_cell("") == ""

    def test_keeps_stopwords(self):
        # Normalization must not drop words: "of" distinguishes values.
        assert "of" in normalize_cell("Strait of Magellan").split()
