"""Unit tests for table extraction + context scoring (Sections 2.1.1-2.1.2)."""

from repro.html import parse_html
from repro.tables import ExtractionCensus, extract_grid, extract_tables, is_data_table
from repro.tables.context import extract_context


def page(body: str, title: str = "Test Page") -> str:
    return f"<html><head><title>{title}</title></head><body>{body}</body></html>"


DATA_TABLE = """
<table>
<tr><th>Name</th><th>Country</th></tr>
<tr><td>Denali</td><td>United States</td></tr>
<tr><td>Logan</td><td>Canada</td></tr>
</table>
"""


class TestExtractGrid:
    def test_basic_grid(self):
        root = parse_html(DATA_TABLE)
        grid = extract_grid(root.find_first("table"))
        assert len(grid) == 3
        assert grid[0][0].fmt.is_th
        assert grid[1][0].text == "Denali"

    def test_colspan_padding(self):
        html = "<table><tr><td colspan='3'>Title</td></tr><tr><td>a</td><td>b</td><td>c</td></tr></table>"
        grid = extract_grid(parse_html(html).find_first("table"))
        assert len(grid[0]) == 3
        assert grid[0][0].text == "Title"
        assert grid[0][1].is_empty()

    def test_nested_table_rows_excluded(self):
        html = (
            "<table><tr><td>outer<table><tr><td>inner</td></tr></table></td>"
            "<td>x</td></tr></table>"
        )
        root = parse_html(html)
        outer = root.find_first("table")
        grid = extract_grid(outer)
        assert len(grid) == 1

    def test_formatting_captured(self):
        html = "<table><tr><td><b>Bold</b></td><td bgcolor='#eee'>x</td></tr></table>"
        grid = extract_grid(parse_html(html).find_first("table"))
        assert grid[0][0].fmt.bold
        assert grid[0][1].fmt.background


class TestIsDataTable:
    def test_accepts_relational(self):
        root = parse_html(DATA_TABLE)
        ok, reason = is_data_table(root.find_first("table"))
        assert ok and reason == "ok"

    def test_rejects_forms(self):
        html = "<table><tr><td><input type='text'/></td><td>b</td></tr><tr><td>c</td><td>d</td></tr></table>"
        ok, reason = is_data_table(parse_html(html).find_first("table"))
        assert not ok and reason == "form"

    def test_rejects_nested_layout(self):
        html = "<table><tr><td><table><tr><td>x</td></tr></table></td></tr></table>"
        ok, reason = is_data_table(parse_html(html).find_first("table"))
        assert not ok and reason == "nested"

    def test_rejects_single_column(self):
        html = "<table><tr><td>a</td></tr><tr><td>b</td></tr></table>"
        ok, reason = is_data_table(parse_html(html).find_first("table"))
        assert not ok and reason == "single_column"

    def test_rejects_single_row(self):
        html = "<table><tr><td>a</td><td>b</td></tr></table>"
        ok, reason = is_data_table(parse_html(html).find_first("table"))
        assert not ok and reason == "too_few_rows"

    def test_rejects_calendar(self):
        rows = []
        day = 1
        for _ in range(4):
            cells = "".join(f"<td>{min(day + i, 31)}</td>" for i in range(7))
            rows.append(f"<tr>{cells}</tr>")
            day += 7
        html = f"<table>{''.join(rows)}</table>"
        ok, reason = is_data_table(parse_html(html).find_first("table"))
        assert not ok and reason == "calendar"

    def test_rejects_long_text_layout(self):
        long = "lorem ipsum " * 40
        html = f"<table><tr><td>{long}</td><td>{long}</td></tr><tr><td>{long}</td><td>{long}</td></tr></table>"
        ok, reason = is_data_table(parse_html(html).find_first("table"))
        assert not ok and reason == "layout_long_cells"

    def test_rejects_mostly_empty(self):
        html = (
            "<table><tr><td>a</td><td></td><td></td><td></td></tr>"
            "<tr><td></td><td></td><td></td><td></td></tr></table>"
        )
        ok, reason = is_data_table(parse_html(html).find_first("table"))
        assert not ok and reason == "mostly_empty"

    def test_rejects_degenerate_content(self):
        html = (
            "<table><tr><td>x</td><td>x</td></tr>"
            "<tr><td>x</td><td>x</td></tr></table>"
        )
        ok, reason = is_data_table(parse_html(html).find_first("table"))
        assert not ok and reason == "degenerate_content"


class TestExtractTables:
    def test_end_to_end_extraction(self):
        html = page("<h2>Mountains</h2><p>Tallest peaks.</p>" + DATA_TABLE)
        census = ExtractionCensus()
        tables = extract_tables(parse_html(html), url="u", census=census)
        assert len(tables) == 1
        t = tables[0]
        assert t.num_header_rows == 1
        assert t.page_title == "Test Page"
        assert census.data_tables == 1
        assert census.table_tags == 1

    def test_census_counts_rejections(self):
        html = page(
            DATA_TABLE
            + "<table><tr><td><input/></td><td>x</td></tr><tr><td>a</td><td>b</td></tr></table>"
        )
        census = ExtractionCensus()
        extract_tables(parse_html(html), census=census)
        assert census.table_tags == 2
        assert census.rejected.get("form") == 1
        assert abs(census.yield_fraction - 0.5) < 1e-9

    def test_ids_unique_per_page(self):
        html = page(DATA_TABLE + DATA_TABLE.replace("Denali", "Aconcagua"))
        tables = extract_tables(parse_html(html), id_prefix="p1_t")
        ids = [t.table_id for t in tables]
        assert len(set(ids)) == len(ids)


class TestContextExtraction:
    def test_nearby_heading_scores_highest(self):
        html = page(
            "<div><h2>Dog breeds</h2>" + DATA_TABLE + "</div>"
            "<p>Unrelated footer text far away.</p>"
        )
        root = parse_html(html)
        table = root.find_first("table")
        snippets = extract_context(root, table)
        assert snippets, "expected context snippets"
        assert snippets[0].text == "Dog breeds"

    def test_left_siblings_beat_right(self):
        html = page("<div><p>before text</p>" + DATA_TABLE + "<p>after text</p></div>")
        root = parse_html(html)
        snippets = extract_context(root, root.find_first("table"))
        scores = {s.text: s.score for s in snippets}
        assert scores["before text"] > scores["after text"]

    def test_other_tables_excluded(self):
        html = page(DATA_TABLE + DATA_TABLE.replace("Denali", "Elbrus"))
        root = parse_html(html)
        first = root.find_first("table")
        snippets = extract_context(root, first)
        assert all("Elbrus" not in s.text for s in snippets)

    def test_scores_bounded(self):
        html = page("<h1>T</h1><div><p>a</p><div>" + DATA_TABLE + "</div><p>b</p></div>")
        root = parse_html(html)
        for s in extract_context(root, root.find_first("table")):
            assert 0.0 <= s.score <= 1.0
