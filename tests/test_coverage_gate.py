"""Tests for the stdlib Cobertura coverage gate (``tools/coverage_gate``).

The gate's judgment is what CI relies on, so its pass/fail logic is
pinned against crafted reports: a clean report passes; a report with a
low package floor, a partial decoder branch, an uncovered decoder line,
or missing branch data each fails with a message naming the problem.
"""

from pathlib import Path

from tools.coverage_gate import check, main, parse_report

HEADER = '<?xml version="1.0" ?>\n<coverage version="7.0">'
FOOTER = "</coverage>"


def make_class(filename, lines):
    """One Cobertura ``<class>`` block from ``(number, hits, cond)`` rows.

    ``cond`` is ``None`` for a plain statement line or a
    ``condition-coverage`` string like ``"50% (1/2)"`` for a branch line.
    """
    rows = []
    for number, hits, cond in lines:
        if cond is None:
            rows.append(f'<line number="{number}" hits="{hits}"/>')
        else:
            rows.append(
                f'<line number="{number}" hits="{hits}" branch="true" '
                f'condition-coverage="{cond}"/>'
            )
    body = "".join(rows)
    return (
        f'<packages><package name="p"><classes>'
        f'<class name="x" filename="{filename}">'
        f"<methods/><lines>{body}</lines>"
        f"</class></classes></package></packages>"
    )


def write_report(tmp_path, *blocks):
    path = tmp_path / "coverage.xml"
    path.write_text(HEADER + "".join(blocks) + FOOTER, encoding="utf-8")
    return path


def clean_binfmt(filename="src/repro/index/binfmt.py"):
    return make_class(
        filename,
        [(1, 5, None), (2, 3, "100% (2/2)"), (3, 1, None),
         (4, 2, "100% (4/4)")],
    )


class TestParse:
    def test_tallies_lines_and_branches(self, tmp_path):
        path = write_report(tmp_path, clean_binfmt())
        record = parse_report(path)["src/repro/index/binfmt.py"]
        assert (record.lines_hit, record.lines_total) == (4, 4)
        assert (record.branches_hit, record.branches_total) == (6, 6)
        assert record.line_rate == 1.0
        assert record.branch_rate == 1.0

    def test_merges_duplicate_class_entries(self, tmp_path):
        # coverage.py can emit one <class> per traced context for the
        # same file; tallies must merge, not overwrite.
        block = clean_binfmt() + make_class(
            "src/repro/index/binfmt.py", [(9, 0, None)]
        )
        path = write_report(tmp_path, block)
        record = parse_report(path)["src/repro/index/binfmt.py"]
        assert (record.lines_hit, record.lines_total) == (4, 5)
        assert record.missed_lines == [9]


class TestCheck:
    def test_clean_report_passes(self, tmp_path):
        path = write_report(
            tmp_path, clean_binfmt(),
            make_class("src/repro/index/builder.py",
                       [(1, 1, None), (2, 1, None)]),
        )
        assert check(parse_report(path)) == []

    def test_low_package_floor_fails(self, tmp_path):
        lines = [(n, 1 if n <= 2 else 0, None) for n in range(1, 11)]
        path = write_report(
            tmp_path, clean_binfmt(),
            make_class("src/repro/index/builder.py", lines),
        )
        failures = check(parse_report(path))
        assert any("below the 90% floor" in f for f in failures)

    def test_partial_decoder_branch_fails(self, tmp_path):
        path = write_report(
            tmp_path,
            make_class("src/repro/index/binfmt.py",
                       [(1, 1, None), (2, 1, "50% (1/2)")]),
        )
        failures = check(parse_report(path))
        assert any(
            "branch coverage 50.0%" in f and "lines [2]" in f
            for f in failures
        ), failures

    def test_uncovered_decoder_line_fails_even_at_high_floor(self, tmp_path):
        # 1 missed line out of many keeps the package above 90% but the
        # decoder's own line bar is absolute.
        lines = [(n, 1, None) for n in range(1, 40)] + [(40, 0, None)]
        path = write_report(
            tmp_path, make_class("src/repro/index/binfmt.py", lines),
        )
        failures = check(parse_report(path))
        assert any("uncovered lines [40]" in f for f in failures), failures

    def test_missing_branch_data_fails(self, tmp_path):
        path = write_report(
            tmp_path,
            make_class("src/repro/index/binfmt.py",
                       [(1, 1, None), (2, 1, None)]),
        )
        failures = check(parse_report(path))
        assert any("--cov-branch" in f for f in failures), failures

    def test_missing_package_fails(self, tmp_path):
        path = write_report(
            tmp_path, make_class("src/repro/service/facade.py",
                                 [(1, 1, None)]),
        )
        failures = check(parse_report(path))
        assert any("--cov=repro.index" in f for f in failures), failures

    def test_missing_decoder_file_fails(self, tmp_path):
        path = write_report(
            tmp_path, make_class("src/repro/index/builder.py",
                                 [(1, 1, None)]),
        )
        failures = check(parse_report(path))
        assert any("binfmt.py not found" in f for f in failures), failures


class TestMain:
    def test_exit_codes(self, tmp_path, capsys):
        good = write_report(
            tmp_path, clean_binfmt(),
        )
        assert main([str(good)]) == 0
        assert "coverage gate passed" in capsys.readouterr().out

        bad = tmp_path / "bad.xml"
        bad.write_text(
            HEADER
            + make_class("src/repro/index/binfmt.py",
                         [(1, 0, None), (2, 1, "50% (1/2)")])
            + FOOTER,
            encoding="utf-8",
        )
        assert main([str(bad)]) == 1
        assert "coverage gate FAILED" in capsys.readouterr().out

    def test_missing_report_is_exit_2(self, tmp_path, capsys):
        assert main([str(tmp_path / "nope.xml")]) == 2
        assert "not found" in capsys.readouterr().out
