"""Docstring-coverage gate on the public serving/index surface.

CI additionally runs the real ``interrogate --fail-under 80`` over the
same targets; this in-tree twin (``tools/docstring_coverage.py``, stdlib
only) keeps the bar enforced wherever the suite runs.
"""

import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "tools"))

from docstring_coverage import check, inspect_file  # noqa: E402

GATED = [
    str(REPO_ROOT / "src" / "repro" / "service"),
    str(REPO_ROOT / "src" / "repro" / "index"),
    str(REPO_ROOT / "src" / "repro" / "exec"),
    str(REPO_ROOT / "src" / "repro" / "serve"),
    str(REPO_ROOT / "src" / "repro" / "cli.py"),
]


class TestDocstringGate:
    def test_public_surface_is_documented(self):
        coverage, missing = check(GATED)
        assert coverage >= 95.0, (
            "public docstring coverage regressed below the gate; "
            f"missing: {missing}"
        )

    def test_key_symbols_have_examples(self):
        """The headline APIs carry example-bearing docstrings (`::` blocks)."""
        import repro.cli
        import repro.exec
        import repro.serve
        from repro.exec import ExecutionContext, ExecutionPlan
        from repro.index import JournaledCorpus, ShardedCorpus, load_corpus
        from repro.index.protocol import CorpusProtocol
        from repro.serve import ReproServer, ServeClient, ServeConfig
        from repro.service import EngineConfig, WWTService

        for obj in (WWTService, EngineConfig, ShardedCorpus,
                    JournaledCorpus, CorpusProtocol, load_corpus, repro.cli,
                    repro.exec, ExecutionContext, ExecutionPlan,
                    repro.serve, ReproServer, ServeConfig, ServeClient):
            doc = obj.__doc__ or ""
            assert "::" in doc, f"{obj!r} docstring has no example block"

    def test_concordance_covers_every_package(self):
        """docs/concordance.md must name every package under src/repro/."""
        concordance = (REPO_ROOT / "docs" / "concordance.md").read_text(
            encoding="utf-8"
        )
        packages = sorted(
            child.name
            for child in (REPO_ROOT / "src" / "repro").iterdir()
            if child.is_dir() and (child / "__init__.py").is_file()
        )
        assert packages  # the repo layout moved? fix this test's path
        missing = [p for p in packages if f"repro.{p}" not in concordance]
        assert not missing, (
            f"docs/concordance.md does not mention packages: {missing}"
        )

    def test_checker_flags_missing_docstrings(self, tmp_path):
        source = tmp_path / "mod.py"
        source.write_text(
            '"""Module doc."""\n'
            "def documented():\n"
            '    """Doc."""\n'
            "def undocumented():\n"
            "    pass\n"
            "def _private():\n"
            "    pass\n"
        )
        documented, total, missing = inspect_file(source)
        assert (documented, total) == (2, 3)
        assert missing == ["undocumented"]
