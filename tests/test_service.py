"""Tests for the serving layer: EngineConfig, registry, caches, WWTService."""

import time

import pytest

from repro.inference import ALGORITHMS, REGISTRY
from repro.inference.registry import (
    AlgorithmInfo,
    InferenceRegistry,
    UnknownAlgorithmError,
)
from repro.pipeline.wwt import WWTAnswer, WWTEngine
from repro.query.model import Query
from repro.service import (
    EngineConfig,
    LRUCache,
    QueryRequest,
    WWTService,
    normalized_query_key,
)


class TestEngineConfig:
    def test_defaults_valid(self):
        config = EngineConfig()
        assert config.inference == "table-centric"
        assert config.caching_enabled

    def test_round_trip(self):
        config = EngineConfig(
            inference="bp", cache_size=7, probe_cache_size=3,
            max_workers=2, page_size=10,
        )
        data = config.to_dict()
        assert data["inference"] == "bp"
        assert EngineConfig.from_dict(data) == config

    def test_round_trip_preserves_nested_tunables(self):
        config = EngineConfig().replace(
            params=EngineConfig().params.with_values(w1=2.0),
        )
        restored = EngineConfig.from_dict(config.to_dict())
        assert restored.params.w1 == 2.0
        assert restored == config

    def test_from_dict_partial(self):
        config = EngineConfig.from_dict({"inference": "none"})
        assert config.inference == "none"
        assert config.cache_size == EngineConfig().cache_size

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(ValueError, match="unknown EngineConfig keys"):
            EngineConfig.from_dict({"inferenec": "bp"})
        with pytest.raises(ValueError, match="unknown probe keys"):
            EngineConfig.from_dict({"probe": {"stage1_limt": 5}})

    def test_unknown_inference_rejected(self):
        with pytest.raises(ValueError, match="unknown inference"):
            EngineConfig(inference="nope")

    def test_serving_knobs_validated(self):
        with pytest.raises(ValueError):
            EngineConfig(cache_size=-1)
        with pytest.raises(ValueError):
            EngineConfig(max_workers=0)
        with pytest.raises(ValueError):
            EngineConfig(page_size=0)

    def test_deadline_knobs_round_trip_and_validate(self):
        config = EngineConfig(deadline_ms=75.5, degraded_ok=False)
        restored = EngineConfig.from_dict(config.to_dict())
        assert restored == config
        assert restored.deadline_ms == 75.5
        assert restored.degraded_ok is False
        assert EngineConfig().deadline_ms is None  # unbounded by default
        assert EngineConfig().degraded_ok is True
        with pytest.raises(ValueError, match="deadline_ms"):
            EngineConfig(deadline_ms=0)
        with pytest.raises(ValueError, match="deadline_ms"):
            EngineConfig(deadline_ms=-1.0)


class TestRegistry:
    def test_decorator_registration_and_metadata(self):
        registry = InferenceRegistry()

        @registry.register("toy", exact=True, collective=False,
                           description="test oracle")
        def toy(problem):
            return None

        info = registry.info("toy")
        assert isinstance(info, AlgorithmInfo)
        assert info.fn is toy
        assert info.capability == "exact"
        assert not info.collective
        assert registry["toy"] is toy
        assert "toy" in registry and len(registry) == 1

    def test_duplicate_registration_rejected(self):
        registry = InferenceRegistry()
        registry.add("x", lambda p: None)
        with pytest.raises(ValueError, match="already registered"):
            registry.add("x", lambda p: None)
        replacement = lambda p: None
        registry.add("x", replacement, replace=True)
        assert registry["x"] is replacement

    def test_unknown_algorithm_error(self):
        registry = InferenceRegistry()
        with pytest.raises(UnknownAlgorithmError) as exc:
            registry.get_algorithm("missing")
        assert "missing" in str(exc.value)
        # Back-compat: callers catching KeyError still work.
        assert isinstance(exc.value, KeyError)

    def test_default_registry_holds_table2_algorithms(self):
        assert set(REGISTRY.names()) == {
            "none", "alpha-expansion", "bp", "trws", "table-centric",
        }
        # The legacy dict constant is the registry itself.
        assert ALGORITHMS is REGISTRY
        assert dict(ALGORITHMS.items())["table-centric"] is (
            REGISTRY.get_algorithm("table-centric")
        )
        assert not REGISTRY.info("none").collective
        assert REGISTRY.info("table-centric").capability == "approximate"


class TestLRUCache:
    def test_hit_miss_counters(self):
        cache = LRUCache(capacity=2)
        assert cache.get("a") == (False, None)
        cache.put("a", 1)
        assert cache.get("a") == (True, 1)
        stats = cache.stats()
        assert stats.hits == 1 and stats.misses == 1
        assert stats.hit_rate == pytest.approx(0.5)

    def test_lru_eviction_order(self):
        cache = LRUCache(capacity=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")  # refresh a: b is now least-recent
        cache.put("c", 3)
        assert "b" not in cache
        assert cache.get("a") == (True, 1)
        assert cache.get("c") == (True, 3)

    def test_zero_capacity_disables(self):
        cache = LRUCache(capacity=0)
        cache.put("a", 1)
        assert not cache.enabled
        assert cache.get("a") == (False, None)
        assert len(cache) == 0

    def test_clear_keeps_counters(self):
        cache = LRUCache(capacity=4)
        cache.put("a", 1)
        cache.get("a")
        cache.clear()
        assert len(cache) == 0
        assert cache.stats().hits == 1


class TestRequestTypes:
    def test_normalized_key_collapses_surface_forms(self):
        a = normalized_query_key(Query.parse("Country |  CURRENCY"))
        b = normalized_query_key(Query.parse("country | currency"))
        assert a == b

    def test_request_validation(self):
        with pytest.raises(ValueError):
            QueryRequest.parse("a | b", page=0)
        with pytest.raises(ValueError):
            QueryRequest.parse("a | b", page_size=0)

    def test_request_coercion(self):
        request = QueryRequest.of("a | b")
        assert request.query.columns == ("a", "b")
        assert QueryRequest.of(request) is request
        assert QueryRequest.of(Query.parse("a")).query.q == 1

    def test_num_pages_defensive_against_bad_page_size(self):
        """Direct construction with page_size <= 0 must not divide by
        zero — one page, no next page (requests validate their own)."""
        from repro.pipeline.wwt import QueryTiming
        from repro.service import QueryResponse

        def response(page_size):
            return QueryResponse(
                query=Query.parse("a | b"), header=["a", "b"], rows=[],
                page=1, page_size=page_size, total_rows=42,
                timing=QueryTiming(), algorithm="none",
            )

        assert response(0).num_pages == 1
        assert response(-3).num_pages == 1
        assert not response(0).has_next_page
        assert response(10).num_pages == 5
        assert response(0).to_dict()["num_pages"] == 1  # no crash


@pytest.fixture(scope="module")
def service(small_env):
    return WWTService(
        small_env.synthetic.corpus,
        EngineConfig(cache_size=64, probe_cache_size=64, max_workers=4),
    )


class TestWWTService:
    def test_answer_shape(self, service):
        response = service.answer("country | currency")
        assert response.header == ["country", "currency"]
        assert response.total_rows > 0
        assert len(response.rows) <= response.page_size
        assert response.algorithm == "table-centric"
        assert response.timing.total >= response.timing.column_map

    def test_cache_hit_on_normalized_repeat(self, small_env):
        service = WWTService(small_env.synthetic.corpus)
        cold = service.answer("country | gdp")
        warm = service.answer("Country |  GDP")  # same normalized key
        assert not cold.cache_hit
        assert warm.cache_hit
        assert [r.cells for r in warm.rows] == [r.cells for r in cold.rows]
        stats = service.stats()
        assert stats.result_cache.hits == 1
        assert stats.result_cache.misses == 1

    def test_cache_bypass(self, small_env):
        service = WWTService(small_env.synthetic.corpus)
        service.answer("dog breed")
        bypass = service.answer(QueryRequest.parse("dog breed", use_cache=False))
        assert not bypass.cache_hit

    def test_inference_override_is_cached_separately(self, service):
        a = service.answer(QueryRequest.parse("us states | capitals"))
        b = service.answer(
            QueryRequest.parse("us states | capitals", inference="none")
        )
        assert not b.cache_hit
        assert b.algorithm == "none"
        assert a.algorithm == "table-centric"

    def test_pagination(self, service):
        full = service.answer(QueryRequest.parse("country | currency",
                                                 page_size=1000))
        total = full.total_rows
        page_size = max(1, total // 3)
        seen = []
        page = 1
        while True:
            response = service.answer(
                QueryRequest.parse("country | currency",
                                   page=page, page_size=page_size)
            )
            assert response.num_pages == -(-total // page_size)
            seen.extend(tuple(r.cells) for r in response.rows)
            if not response.has_next_page:
                break
            page += 1
        assert seen == [tuple(r.cells) for r in full.rows]

    def test_explain_payload(self, service):
        response = service.answer(
            QueryRequest.parse("country | currency", explain=True)
        )
        explain = response.explain
        assert explain is not None
        assert explain["algorithm"] == "table-centric"
        assert explain["num_candidates"] >= len(explain["relevant_tables"])
        for entry in explain["relevant_tables"]:
            assert set(entry) == {"table_id", "relevance", "column_mapping"}

    def test_answer_full_exposes_pipeline_artifact(self, service):
        full = service.answer_full("country | currency")
        assert isinstance(full, WWTAnswer)
        assert full.problem is not None
        assert full.probe.num_candidates >= 0

    def test_batch_preserves_input_order(self, small_env):
        service = WWTService(small_env.synthetic.corpus)
        texts = ["country | currency", "dog breed", "country | gdp",
                 "dog breed", "country | currency"]
        responses = service.answer_batch(texts, max_workers=3)
        assert [str(r.query) for r in responses] == texts
        assert service.stats().batches == 1

    def test_batch_empty(self, service):
        assert service.answer_batch([]) == []

    def test_batch_caching_speeds_up_repeats(self, small_env):
        """Acceptance: >=20 workload queries, repeats measurably faster."""
        service = WWTService(
            small_env.synthetic.corpus,
            EngineConfig(cache_size=128, probe_cache_size=128, max_workers=4),
        )
        queries = [wq.query for wq in small_env.queries[:20]]
        assert len(queries) >= 20

        start = time.perf_counter()
        cold = service.answer_batch(queries)
        cold_time = time.perf_counter() - start

        start = time.perf_counter()
        warm = service.answer_batch(queries)
        warm_time = time.perf_counter() - start

        assert all(not r.cache_hit for r in cold)
        assert all(r.cache_hit for r in warm)
        stats = service.stats()
        assert stats.result_cache.hits >= len(queries)
        assert warm_time < cold_time
        # Warm rows are byte-identical to cold rows, in order.
        for c, w in zip(cold, warm):
            assert [r.cells for r in c.rows] == [r.cells for r in w.rows]

    def test_single_flight_collapses_concurrent_duplicates(self, small_env):
        service = WWTService(small_env.synthetic.corpus)
        computations = []
        original = service._compute

        def counting_compute(query, name, deadline_ms=None):
            computations.append(str(query))
            return original(query, name, deadline_ms)

        service._compute = counting_compute
        responses = service.answer_batch(["country | currency"] * 4,
                                         max_workers=4)
        assert len(computations) == 1
        assert sum(1 for r in responses if not r.cache_hit) == 1
        assert sum(1 for r in responses if r.cache_hit) == 3

    def test_probe_cache_hit_keeps_probe_timings(self, small_env):
        service = WWTService(small_env.synthetic.corpus)
        cold = service.answer("country | currency")
        # Result-cache miss (different inference) but probe-cache hit: the
        # probe stages must still report the original cost, not zero.
        warm = service.answer(
            QueryRequest.parse("country | currency", inference="none")
        )
        assert not warm.cache_hit
        assert warm.timing.index1 == cold.timing.index1
        assert warm.timing.read1 == cold.timing.read1
        assert cold.timing.index1 > 0.0

    def test_stats_to_dict(self, service):
        data = service.stats().to_dict()
        assert {"queries", "batches", "total_time",
                "result_cache", "probe_cache",
                "stages", "deadline_hits", "degraded_answers"} <= set(data)
        for aggregate in data["stages"].values():
            assert {"count", "total", "mean", "p50", "p95"} == set(aggregate)

    def test_clear_caches(self, small_env):
        service = WWTService(small_env.synthetic.corpus)
        service.answer("dog breed")
        service.clear_caches()
        response = service.answer("dog breed")
        assert not response.cache_hit


class TestEngineShim:
    def test_deprecation_warning(self, small_env):
        with pytest.warns(DeprecationWarning, match="WWTService"):
            WWTEngine(small_env.synthetic.corpus)

    def test_top_level_import_still_works(self):
        import repro

        assert repro.WWTEngine is WWTEngine

    def test_answers_like_the_service(self, small_env):
        with pytest.warns(DeprecationWarning):
            engine = WWTEngine(small_env.synthetic.corpus)
        query = Query.parse("country | currency")
        old = engine.answer(query)
        new = WWTService(small_env.synthetic.corpus).answer_full(query)
        assert [r.cells for r in old.answer.rows] == (
            [r.cells for r in new.answer.rows]
        )
        assert engine.inference_name == "table-centric"
        assert engine.params == new.problem.params

    def test_unknown_inference_still_valueerror(self, small_env):
        with pytest.warns(DeprecationWarning), pytest.raises(ValueError):
            WWTEngine(small_env.synthetic.corpus, inference="nope")


class TestShardedServing:
    """EngineConfig index knobs + WWTService corpus loading."""

    def test_new_knobs_round_trip(self):
        config = EngineConfig(
            num_shards=4, index_path="/tmp/corpus", probe_workers=2
        )
        restored = EngineConfig.from_dict(config.to_dict())
        assert restored == config
        assert restored.num_shards == 4
        assert restored.index_path == "/tmp/corpus"
        assert restored.probe_workers == 2

    def test_index_path_coerced_to_str(self, tmp_path):
        config = EngineConfig(index_path=tmp_path / "corpus")
        assert isinstance(config.index_path, str)
        assert config.to_dict()["index_path"] == str(tmp_path / "corpus")

    def test_knob_validation(self):
        with pytest.raises(ValueError):
            EngineConfig(num_shards=0)
        with pytest.raises(ValueError):
            EngineConfig(probe_workers=0)

    def test_no_corpus_no_path_rejected(self):
        with pytest.raises(ValueError, match="index_path"):
            WWTService()

    def test_service_from_persisted_corpus(self, small_env, tmp_path):
        from repro.index import build_sharded_corpus

        tables = list(small_env.synthetic.corpus.store)
        build_sharded_corpus(tables, 2).save(tmp_path / "corpus")

        by_path = WWTService(tmp_path / "corpus")
        by_config = WWTService(
            config=EngineConfig(index_path=str(tmp_path / "corpus"),
                                probe_workers=2)
        )
        in_memory = WWTService(small_env.synthetic.corpus)

        expected = in_memory.answer("country | currency")
        for service in (by_path, by_config):
            assert service.corpus.num_shards == 2
            response = service.answer("country | currency")
            assert response.header == expected.header
            assert [r.cells for r in response.rows] == (
                [r.cells for r in expected.rows]
            )

    def test_service_close_owns_loaded_corpus(self, small_env, tmp_path):
        from repro.index import build_sharded_corpus

        tables = list(small_env.synthetic.corpus.store)
        build_sharded_corpus(tables, 2).save(tmp_path / "corpus")
        with WWTService(
            tmp_path / "corpus", EngineConfig(probe_workers=2)
        ) as service:
            assert service._owns_corpus
            assert service.corpus._executor is not None
            service.answer("country | currency")
        assert service.corpus._executor is None

    def test_service_close_leaves_caller_corpus_alone(self, small_env):
        from repro.index import build_sharded_corpus

        tables = list(small_env.synthetic.corpus.store)
        corpus = build_sharded_corpus(tables, 2, probe_workers=2)
        try:
            service = WWTService(corpus)
            service.close()
            assert corpus._executor is not None  # caller owns it
        finally:
            corpus.close()
