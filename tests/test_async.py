"""The asyncio execution surface: plan, facade, and serving mode.

The contract under test is byte-identity: ``ExecutionPlan.run_async``,
``WWTService.answer_async``, and the server's ``execution_mode="async"``
must produce exactly the answers their synchronous counterparts produce
— same rows, scores, spans, and degradation decisions — because the
stage bodies are untouched and only the boundaries between them become
``await`` points.  Timing fields are the only sanctioned difference.
"""

import asyncio
import json
import threading

import pytest

from repro.corpus.generator import CorpusConfig, generate_corpus
from repro.exec.context import ExecutionContext
from repro.exec.plan import ExecutionPlan, Stage
from repro.serve import ReproServer, ServeConfig, ServeClient
from repro.serve.protocol import answer_payload
from repro.service import EngineConfig, QueryRequest, WWTService


def run(coro):
    return asyncio.run(coro)


class FakeClock:
    def __init__(self, now=0.0):
        self.now = now

    def __call__(self):
        return self.now


# ---------------------------------------------------------------------------
# ExecutionPlan.run_async


class TestRunAsync:
    def plan_and_state(self):
        order = []

        def stage(name):
            def fn(ctx, state):
                order.append(name)
                state[name] = True
            return fn

        plan = ExecutionPlan([
            Stage("parse", stage("parse")),
            Stage("rank", stage("rank")),
        ])
        return plan, order

    def test_runs_stages_in_order_on_the_loop(self):
        plan, order = self.plan_and_state()
        state = {}
        result = run(plan.run_async(ExecutionContext(), state))
        assert result is state
        assert order == ["parse", "rank"]
        assert state == {"parse": True, "rank": True}

    def test_async_matches_sync_skip_and_fallback_decisions(self):
        clock = FakeClock()

        def slow(ctx, state):
            state.append("slow")
            clock.now += 10.0

        def cheap(ctx, state):
            state.append("cheap")

        def build():
            return ExecutionPlan([
                Stage("a", slow),
                Stage("b", slow, skippable=True),
                Stage("c", slow, fallback=cheap, fallback_note="cheap"),
            ])

        def fresh_ctx():
            return ExecutionContext(
                deadline_ms=5.0, degraded_ok=True, clock=clock,
            )

        clock.now = 0.0
        sync_state = []
        sync_ctx = fresh_ctx()
        build().run(sync_ctx, sync_state)

        clock.now = 0.0
        async_state = []
        async_ctx = fresh_ctx()
        run(build().run_async(async_ctx, async_state))

        assert async_state == sync_state == ["slow", "cheap"]
        assert async_ctx.degraded == sync_ctx.degraded is True
        assert (
            async_ctx.root.stage_names() == sync_ctx.root.stage_names()
        )

    def test_stage_boundary_yields_to_the_loop(self):
        # A sibling task scheduled before the plan must get the loop
        # between stages — that interleaving is run_async's entire point.
        sibling_ticks = []

        async def sibling():
            for _ in range(2):
                sibling_ticks.append(len(sibling_ticks))
                await asyncio.sleep(0)

        def fn(ctx, state):
            state.append(len(sibling_ticks))

        plan = ExecutionPlan([Stage("s1", fn), Stage("s2", fn)])

        async def main():
            task = asyncio.get_running_loop().create_task(sibling())
            state = []
            await plan.run_async(ExecutionContext(), state)
            await task
            return state

        observed = run(main())
        # The sibling ran at least once before the last stage.
        assert observed[-1] >= 1


# ---------------------------------------------------------------------------
# WWTService.answer_async


@pytest.fixture(scope="module")
def corpus():
    return generate_corpus(CorpusConfig(seed=42, scale=0.05)).corpus


def response_view(response):
    """Everything but wall-clock timing, as a canonical string."""
    payload = answer_payload(response)
    return json.dumps(payload, sort_keys=True)


class TestAnswerAsync:
    def test_byte_identical_to_sync(self, corpus):
        service = WWTService(corpus, EngineConfig(cache_size=0))
        request = QueryRequest.parse("country | currency", page_size=7)
        sync_response = service.answer(request)
        async_response = run(service.answer_async(request))
        assert response_view(async_response) == response_view(sync_response)
        assert async_response.stages_ran == sync_response.stages_ran
        assert async_response.degraded == sync_response.degraded

    def test_cache_shared_with_sync_path(self, corpus):
        service = WWTService(corpus, EngineConfig(cache_size=8))
        request = QueryRequest.parse("country | currency")
        cold = service.answer(request)
        warm = run(service.answer_async(request))
        assert warm.cache_hit is True
        assert response_view(warm) == response_view(cold)

    def test_deadline_degrades_identically(self, corpus):
        service = WWTService(corpus, EngineConfig(cache_size=0))
        request = QueryRequest.parse(
            "country | currency", deadline_ms=0.02, use_cache=False,
        )
        sync_response = service.answer(request)
        async_response = run(service.answer_async(request))
        assert async_response.degraded is sync_response.degraded is True
        assert async_response.stages_ran == sync_response.stages_ran

    def test_concurrent_async_queries_on_one_loop(self, corpus):
        service = WWTService(corpus, EngineConfig(cache_size=0))
        texts = ["country | currency", "dog breed", "country | capital"]

        async def main():
            return await asyncio.gather(*[
                service.answer_async(QueryRequest.parse(t)) for t in texts
            ])

        responses = run(main())
        singles = [
            service.answer(QueryRequest.parse(t)) for t in texts
        ]
        for got, want in zip(responses, singles):
            assert response_view(got) == response_view(want)


# ---------------------------------------------------------------------------
# execution_mode="async" over real sockets


class TestAsyncServeMode:
    def test_async_mode_serves_byte_identical_answers(self, corpus):
        service = WWTService(corpus)
        body_by_mode = {}
        for mode in ("thread", "async"):
            config = ServeConfig(port=0, workers=2, execution_mode=mode)
            with ReproServer(service, config) as server:
                with ServeClient(server.host, server.port) as client:
                    status, _, body = client.query(
                        {"query": "country | currency", "use_cache": False}
                    )
                    assert status == 200
                    body_by_mode[mode] = body
        assert (
            json.dumps(body_by_mode["async"]["answer"], sort_keys=True)
            == json.dumps(body_by_mode["thread"]["answer"], sort_keys=True)
        )

    def test_async_mode_overlaps_requests(self, corpus):
        # Two simultaneous clients against workers=2: both must complete
        # through the single loop thread without serializing to failure.
        service = WWTService(corpus, EngineConfig(cache_size=0))
        config = ServeConfig(port=0, workers=2, execution_mode="async")
        results = []
        with ReproServer(service, config) as server:
            def post(text):
                with ServeClient(server.host, server.port) as client:
                    results.append(client.query({"query": text}))

            threads = [
                threading.Thread(target=post, args=(t,))
                for t in ("country | currency", "dog breed")
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=60)
        assert [status for status, _, _ in results] == [200, 200]

    def test_async_mode_graceful_shutdown_drains(self, corpus):
        service = WWTService(corpus)
        config = ServeConfig(port=0, workers=2, execution_mode="async")
        server = ReproServer(service, config).start()
        with ServeClient(server.host, server.port) as client:
            status, _, _ = client.query({"query": "country | currency"})
            assert status == 200
        server.shutdown()
        server.shutdown()  # idempotent
        stats = server.stats()
        assert stats.accepted == stats.completed == 1
