"""Table-independent inference and max-marginals vs brute force."""

import itertools
import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.inference import (
    exhaustive_inference,
    independent_inference,
    solve_table,
    table_max_marginals,
)

from .conftest import make_problem


def brute_force_table(problem, ti, include_must=True, include_min=True):
    """Best labeling of one table by enumeration under the constraints."""
    labels = problem.labels
    cols = problem.table_columns(ti)
    best, best_score = None, float("-inf")
    for assign in itertools.product(range(labels.size), repeat=len(cols)):
        y = dict(zip(cols, assign))
        n_nr = sum(1 for l in assign if l == labels.nr)
        if n_nr not in (0, len(assign)):
            continue
        if n_nr == 0:
            qs = [l for l in assign if labels.is_query(l)]
            if len(set(qs)) != len(qs):
                continue
            if include_must and 0 not in qs:
                continue
            if include_min and len(qs) < problem.min_match(ti):
                continue
        score = sum(problem.node_potentials[tc][y[tc]] for tc in cols)
        if score > best_score:
            best_score, best = score, y
    return best, best_score


class TestSolveTable:
    def test_clear_relevant_mapping(self):
        problem = make_problem(
            "a | b",
            [2],
            {(0, 0): [2.0, -0.3, 0.0, 0.1], (0, 1): [-0.3, 2.0, 0.0, 0.1]},
        )
        y = solve_table(problem, 0)
        assert y[(0, 0)] == 0 and y[(0, 1)] == 1

    def test_clear_irrelevant(self):
        problem = make_problem(
            "a | b",
            [2],
            {(0, 0): [-0.3, -0.3, 0.0, 1.0], (0, 1): [-0.3, -0.3, 0.0, 1.0]},
        )
        y = solve_table(problem, 0)
        nr = problem.labels.nr
        assert y[(0, 0)] == nr and y[(0, 1)] == nr

    def test_must_match_forces_first_column(self):
        # Column 2's match is strong but label 1 must appear for relevance.
        problem = make_problem(
            "a | b",
            [2],
            {(0, 0): [0.4, -0.3, 0.0, 0.05], (0, 1): [-0.3, 3.0, 0.0, 0.05]},
        )
        y = solve_table(problem, 0)
        assert y[(0, 0)] == 0  # takes label 1 despite modest score
        assert y[(0, 1)] == 1

    def test_min_match_blocks_single_label_tables(self):
        # Only label 1 matches; min-match (2 for q=2) makes relevance
        # require two mapped columns, forcing a second (negative) one.
        problem = make_problem(
            "a | b",
            [3],
            {
                (0, 0): [3.0, -1.0, 0.0, 0.2],
                (0, 1): [-1.0, -1.0, 0.0, 0.2],
                (0, 2): [-1.0, -1.0, 0.0, 0.2],
            },
        )
        y = solve_table(problem, 0)
        labels = problem.labels
        query_count = sum(1 for l in y.values() if labels.is_query(l))
        assert query_count in (0, 2)  # nr everywhere, or exactly min-match

    def test_single_column_query_on_one_column_table(self):
        problem = make_problem("a", [1], {(0, 0): [1.0, 0.0, 0.2]})
        y = solve_table(problem, 0)
        assert y[(0, 0)] == 0

    @settings(max_examples=60, deadline=None)
    @given(
        st.lists(
            st.lists(st.floats(-2, 3, width=16), min_size=4, max_size=4),
            min_size=1,
            max_size=3,
        )
    )
    def test_matches_brute_force(self, rows):
        width = len(rows)
        potentials = {(0, ci): [rows[ci][0], rows[ci][1], 0.0, rows[ci][3]]
                      for ci in range(width)}
        problem = make_problem("a | b", [width], potentials)
        y = solve_table(problem, 0)
        got = sum(problem.node_potentials[tc][y[tc]] for tc in y)
        _, want = brute_force_table(problem, 0)
        assert math.isclose(got, want, rel_tol=1e-6, abs_tol=1e-6)
        assert problem.constraints_satisfied(y)


class TestMaxMarginals:
    @settings(max_examples=50, deadline=None)
    @given(
        st.lists(
            st.lists(st.floats(-2, 3, width=16), min_size=4, max_size=4),
            min_size=1,
            max_size=3,
        )
    )
    def test_match_brute_force(self, rows):
        width = len(rows)
        potentials = {(0, ci): [rows[ci][0], rows[ci][1], 0.0, rows[ci][3]]
                      for ci in range(width)}
        problem = make_problem("a | b", [width], potentials)
        labels = problem.labels
        mm = table_max_marginals(problem, 0)

        # Brute force: mutex + all-Irr only (must/min-match excluded, Fig 3).
        cols = problem.table_columns(0)
        for ci in range(width):
            for l in range(labels.size):
                best = float("-inf")
                for assign in itertools.product(
                    range(labels.size), repeat=width
                ):
                    if assign[ci] != l:
                        continue
                    n_nr = sum(1 for x in assign if x == labels.nr)
                    if n_nr not in (0, width):
                        continue
                    qs = [x for x in assign if labels.is_query(x)]
                    if len(set(qs)) != len(qs):
                        continue
                    best = max(
                        best,
                        sum(
                            problem.node_potentials[cols[j]][assign[j]]
                            for j in range(width)
                        ),
                    )
                got = mm[(0, ci)][l]
                if best == float("-inf"):
                    assert got == float("-inf")
                else:
                    assert math.isclose(got, best, rel_tol=1e-6, abs_tol=1e-6), (
                        f"mm[{ci}][{l}]: got {got} want {best}"
                    )

    def test_nr_marginal_is_table_level(self):
        problem = make_problem(
            "a",
            [2],
            {(0, 0): [1.0, 0.0, 0.5], (0, 1): [0.2, 0.0, 0.5]},
        )
        mm = table_max_marginals(problem, 0)
        # all-Irr: forcing one column nr forces the whole table.
        assert mm[(0, 0)][problem.labels.nr] == pytest.approx(1.0)
        assert mm[(0, 1)][problem.labels.nr] == pytest.approx(1.0)


class TestIndependentInference:
    def test_matches_exhaustive_without_edges(self):
        problem = make_problem(
            "a | b",
            [2, 2],
            {
                (0, 0): [1.5, -0.3, 0.0, 0.2],
                (0, 1): [-0.3, 1.5, 0.0, 0.2],
                (1, 0): [-0.3, -0.3, 0.0, 0.6],
                (1, 1): [-0.3, -0.3, 0.0, 0.6],
            },
        )
        got = independent_inference(problem)
        want = exhaustive_inference(problem)
        assert math.isclose(
            problem.score(got.labels), problem.score(want.labels), rel_tol=1e-9
        )

    def test_produces_distributions(self):
        problem = make_problem(
            "a", [2], {(0, 0): [2.0, 0.0, 0.1], (0, 1): [-0.3, 0.0, 0.1]}
        )
        result = independent_inference(problem)
        dist = result.distributions[(0, 0)]
        assert len(dist) == problem.labels.size
        assert abs(sum(dist) - 1.0) < 1e-9
        assert dist[0] == max(dist)  # the strong match dominates

    def test_relevance_classification(self):
        problem = make_problem(
            "a", [2], {(0, 0): [2.0, 0.0, 0.1], (0, 1): [-0.3, 0.0, 0.1]}
        )
        result = independent_inference(problem)
        assert result.is_relevant(0)
        assert result.relevant_tables() == [0]
        assert result.table_mapping(0) == {0: 1}
