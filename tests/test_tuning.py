"""Tests for grid training (Section 3.4)."""

import pytest

from repro.core.params import (
    DEFAULT_PARAMS,
    ModelParams,
    enumerate_grid,
    train_parameters,
)
from repro.evaluation.tuning import tune_basic_params, tune_model_params


class TestEnumerateGrid:
    def test_grid_size(self):
        grid = list(enumerate_grid(
            w1_grid=(1.0, 2.0), w2_grid=(0.1,), w3_grid=(0.0,),
            w4_grid=(0.5,), w5_grid=(-0.3, -0.1), we_grid=(0.5,),
        ))
        assert len(grid) == 4

    def test_grid_preserves_base_switches(self):
        base = ModelParams(use_segmented=False)
        grid = list(enumerate_grid(w1_grid=(1.0,), base=base))
        assert all(not p.use_segmented for p in grid)


class TestTrainParameters:
    def test_picks_minimum(self):
        grid = [DEFAULT_PARAMS.with_values(w1=w) for w in (0.5, 1.0, 1.5)]
        best, err = train_parameters(lambda p: abs(p.w1 - 1.0), grid=grid)
        assert best.w1 == 1.0
        assert err == 0.0

    def test_tie_breaks_to_first(self):
        grid = [DEFAULT_PARAMS.with_values(w1=w) for w in (0.5, 1.5)]
        best, _err = train_parameters(lambda p: 7.0, grid=grid)
        assert best.w1 == 0.5

    def test_empty_grid_raises(self):
        with pytest.raises(ValueError):
            train_parameters(lambda p: 0.0, grid=[])


class TestTuneOnEnvironment:
    def test_tune_basic_small(self, small_env):
        ids = [wq.query_id for wq in small_env.queries[:6]]
        params, err = tune_basic_params(
            small_env,
            relevance_grid=(0.1, 0.2),
            column_grid=(0.2,),
            query_ids=ids,
        )
        assert 0.0 <= err <= 100.0
        assert params.column_threshold == 0.2

    def test_tune_model_small(self, small_env):
        ids = [wq.query_id for wq in small_env.queries[:4]]
        grid = [DEFAULT_PARAMS, DEFAULT_PARAMS.with_values(w4=2.0)]
        best, err, trace = tune_model_params(
            small_env, grid, query_ids=ids
        )
        assert len(trace) == 2
        assert err == min(e for _p, e in trace)

    def test_feature_switch_mismatch_rejected(self, small_env):
        ids = [wq.query_id for wq in small_env.queries[:2]]
        bad_grid = [DEFAULT_PARAMS.with_values(use_segmented=False)]
        with pytest.raises(ValueError):
            tune_model_params(small_env, bad_grid, query_ids=ids)
