"""Hot-path engine verification (compiled postings + feature memoization).

Three guarantees the DESIGN.md "Hot-path engine" section promises:

1. The compiled :meth:`InvertedIndex.search` matches the retained
   :class:`NaiveScorer` reference hit-for-hit — doc ids, scores
   (bit-exactly), and per-field breakdowns — on random corpora and on the
   full 59-query workload, for every backend (monolithic, sharded,
   journaled) including after add/delete/compact.
2. The incrementally maintained df counters always equal the brute-force
   set-union definition they replaced.
3. Feature memoization (:class:`FeatureCache`) and the promoted PMI²
   probe caches change *where time goes*, never what is computed:
   cached and cacheless pipelines return identical problems and answers.
"""

import random

import pytest

from repro.core import DEFAULT_PARAMS, FeatureCache, build_problem
from repro.core.features import BoundedCache, query_feature_key
from repro.core.params import ModelParams
from repro.core.pmi import PmiScorer
from repro.index import (
    InvertedIndex,
    JournaledCorpus,
    NaiveScorer,
    build_corpus_index,
    build_sharded_corpus,
)
from repro.query.model import Query
from repro.service import EngineConfig, WWTService
from repro.tables.table import WebTable

KS = (1, 2, 4)
VOCAB = [f"w{i:02d}" for i in range(40)]


def random_fields(rng):
    """One random pre-tokenized document over the small shared vocabulary."""
    return {
        "header": [rng.choice(VOCAB) for _ in range(rng.randint(0, 4))],
        "context": [rng.choice(VOCAB) for _ in range(rng.randint(0, 6))],
        "content": [rng.choice(VOCAB) for _ in range(rng.randint(0, 30))],
    }


def assert_hits_match(got, want, check_field_scores=False):
    """Hit-for-hit equality: ids in order, scores bit-exact."""
    assert [h.doc_id for h in got] == [h.doc_id for h in want]
    assert [h.score for h in got] == [h.score for h in want]
    if check_field_scores:
        assert [h.field_scores for h in got] == [h.field_scores for h in want]


def brute_force_df(docs):
    """The definition the incremental df counters must match."""
    df = {}
    for fields in docs.values():
        for term in {t for tokens in fields.values() for t in tokens}:
            df[term] = df.get(term, 0) + 1
    return df


class TestCompiledMatchesNaive:
    """Property tests on random corpora (multiple seeds, with churn)."""

    @pytest.mark.parametrize("seed", range(6))
    def test_random_corpus_hit_for_hit(self, seed):
        rng = random.Random(seed)
        index = InvertedIndex()
        docs = {}
        for i in range(rng.randint(5, 60)):
            fields = random_fields(rng)
            index.add_document(f"d{i:03d}", fields)
            docs[f"d{i:03d}"] = fields
        for doc_id in rng.sample(sorted(docs), k=len(docs) // 4):
            index.remove_document(doc_id, docs.pop(doc_id))

        naive = NaiveScorer(index)
        for _ in range(15):
            terms = [rng.choice(VOCAB) for _ in range(rng.randint(1, 5))]
            for k in KS + (100,):
                assert_hits_match(
                    index.search(terms, limit=k, with_field_scores=True),
                    naive.search(terms, limit=k),
                    check_field_scores=True,
                )
                # The hot path (no breakdown) ranks and scores identically.
                assert_hits_match(
                    index.search(terms, limit=k), naive.search(terms, limit=k)
                )

    @pytest.mark.parametrize("seed", range(3))
    def test_df_counters_match_brute_force(self, seed):
        rng = random.Random(1000 + seed)
        index = InvertedIndex()
        docs = {}
        for i in range(40):
            fields = random_fields(rng)
            index.add_document(f"d{i}", fields)
            docs[f"d{i}"] = fields
        for doc_id in rng.sample(sorted(docs), k=10):
            index.remove_document(doc_id, docs.pop(doc_id))

        expected = brute_force_df(docs)
        for term in VOCAB:
            assert index.document_frequency(term) == expected.get(term, 0)
        stats = index.term_statistics()
        assert stats.num_docs == len(docs)
        for term in VOCAB:
            assert stats.document_frequency(term) == expected.get(term, 0)

    def test_field_subset_df_still_supported(self):
        index = InvertedIndex()
        index.add_document("a", {"header": ["x"], "content": ["x", "y"]})
        index.add_document("b", {"content": ["x"]})
        assert index.document_frequency("x") == 2
        assert index.document_frequency("x", fields=["header"]) == 1
        assert index.document_frequency("y", fields=["header"]) == 0

    def test_field_scores_opt_in(self):
        index = InvertedIndex()
        index.add_document("a", {"header": ["x"], "content": ["x"]})
        assert index.search(["x"])[0].field_scores == {}
        breakdown = index.search(["x"], with_field_scores=True)[0].field_scores
        assert set(breakdown) == {"header", "content"}

    def test_snapshot_round_trip_preserves_compiled_search(self):
        rng = random.Random(7)
        index = InvertedIndex()
        for i in range(25):
            index.add_document(f"d{i}", random_fields(rng))
        reloaded = InvertedIndex.from_dict(index.to_dict())
        assert reloaded.to_dict() == index.to_dict()
        for term in VOCAB:
            assert (
                reloaded.document_frequency(term)
                == index.document_frequency(term)
            )
        terms = [VOCAB[0], VOCAB[5], VOCAB[9]]
        assert_hits_match(
            reloaded.search(terms, limit=10, with_field_scores=True),
            index.search(terms, limit=10, with_field_scores=True),
            check_field_scores=True,
        )


class TestWorkloadEquivalence:
    """The 59-query workload, hit-for-hit across all three backends."""

    @pytest.fixture(scope="class")
    def tables(self, small_env):
        """The shared synthetic corpus's tables."""
        return list(small_env.synthetic.corpus.store)

    def _check_workload(self, corpus, naive, queries):
        for wq in queries:
            tokens = wq.query.all_tokens()
            for k in KS:
                assert_hits_match(
                    corpus.search(tokens, limit=k),
                    naive.search(tokens, limit=k),
                )

    def test_monolithic(self, small_env):
        corpus = small_env.synthetic.corpus
        naive = NaiveScorer(corpus.index)
        self._check_workload(corpus, naive, small_env.queries)

    def test_sharded(self, small_env, tables):
        naive = NaiveScorer(small_env.synthetic.corpus.index)
        sharded = build_sharded_corpus(tables, num_shards=4)
        self._check_workload(sharded, naive, small_env.queries)

    def test_field_scores_plumbed_through_all_backends(self, small_env, tables):
        """Every CorpusProtocol backend honours the opt-in breakdown."""
        naive = NaiveScorer(small_env.synthetic.corpus.index)
        tokens = small_env.queries[0].query.all_tokens()
        want = naive.search(tokens, limit=5)
        backends = [
            small_env.synthetic.corpus,
            build_sharded_corpus(tables, num_shards=3),
            JournaledCorpus(build_corpus_index(tables)),
        ]
        # Delete + re-add one table so the journaled backend exercises its
        # dirty delta-merge path (net corpus content — and scores — are
        # unchanged, but hits now flow through tombstone filter + delta).
        backends[2].delete_tables([tables[0].table_id])
        backends[2].add_tables([tables[0]])
        for corpus in backends:
            assert_hits_match(
                corpus.search(tokens, limit=5, with_field_scores=True),
                want, check_field_scores=True,
            )
            assert all(
                h.field_scores == {} for h in corpus.search(tokens, limit=5)
            )

    def test_journaled_after_add_delete_compact(self, small_env, tables):
        split = int(len(tables) * 0.8)
        base_tables, extra = tables[:split], tables[split:]
        journaled = JournaledCorpus(build_corpus_index(base_tables))
        journaled.add_tables(extra)
        doomed = [t.table_id for t in base_tables[::7]] + [
            t.table_id for t in extra[::5]
        ]
        journaled.delete_tables(doomed)

        live = [t for t in tables if t.table_id not in set(doomed)]
        naive = NaiveScorer(build_corpus_index(live).index)
        queries = small_env.queries
        self._check_workload(journaled, naive, queries)

        journaled.compact()
        self._check_workload(journaled, naive, queries)


class TestFeatureCache:
    """Memoization must be invisible in the outputs."""

    @pytest.fixture(scope="class")
    def probe_setup(self, small_env):
        """One workload query with its candidate tables and corpus stats."""
        wq = small_env.queries[0]
        tables = small_env.candidates[wq.query_id].tables
        assert tables, "fixture query retrieved no candidates"
        return wq.query, tables, small_env.synthetic.corpus.stats

    def _problems_equal(self, a, b):
        assert a.node_potentials == b.node_potentials
        assert a.features == b.features
        assert a.table_relevance == b.table_relevance
        assert len(a.edges) == len(b.edges)

    def test_cached_problem_identical_to_cacheless(self, probe_setup):
        query, tables, stats = probe_setup
        cold = build_problem(query, tables, stats, DEFAULT_PARAMS)
        cache = FeatureCache()
        first = build_problem(
            query, tables, stats, DEFAULT_PARAMS, feature_cache=cache
        )
        assert cache.misses == len(tables) and cache.hits == 0
        second = build_problem(
            query, tables, stats, DEFAULT_PARAMS, feature_cache=cache
        )
        assert cache.hits == len(tables)
        self._problems_equal(first, cold)
        self._problems_equal(second, cold)

    def test_incremental_extension_computes_only_new_tables(self, probe_setup):
        query, tables, stats = probe_setup
        if len(tables) < 2:
            pytest.skip("needs at least two candidate tables")
        stage1, full = tables[: len(tables) // 2], tables
        cache = FeatureCache()
        build_problem(query, stage1, stats, DEFAULT_PARAMS, feature_cache=cache)
        misses_before = cache.misses
        extended = build_problem(
            query, full, stats, DEFAULT_PARAMS, feature_cache=cache
        )
        assert cache.misses - misses_before == len(full) - len(stage1)
        self._problems_equal(
            extended, build_problem(query, full, stats, DEFAULT_PARAMS)
        )

    def test_pin_auto_clears_on_stats_identity_change(self, probe_setup):
        query, tables, stats = probe_setup
        cache = FeatureCache()
        build_problem(query, tables, stats, DEFAULT_PARAMS, feature_cache=cache)
        assert len(cache) == len(tables)
        from repro.text.tfidf import TermStatistics

        other_stats = TermStatistics.from_dict(stats.to_dict())
        build_problem(
            query, tables, other_stats, DEFAULT_PARAMS, feature_cache=cache
        )
        # The regime flip dropped the old entries; only the re-computed
        # ones (under the new stats object) remain.
        assert len(cache) == len(tables)
        assert cache.hits == 0

    def test_stale_generation_put_is_dropped(self, probe_setup):
        """A writer that pinned before an invalidation cannot cache stale
        features into the freshly cleared cache (compute-vs-mutation race)."""
        query, tables, stats = probe_setup
        cache = FeatureCache()
        old_generation = cache.pin(stats, None, None)
        cache.clear()  # a mutation invalidated the cache mid-compute
        cache.put(("stale",), ("stale-value",), generation=old_generation)
        assert len(cache) == 0
        fresh_generation = cache.pin(stats, None, None)
        cache.put(("fresh",), ("fresh-value",), generation=fresh_generation)
        assert len(cache) == 1
        # The read side refuses cross-regime entries too: a reader still
        # pinned to the old regime must miss (and recompute), never
        # consume features cached under the new one.
        assert cache.get(("fresh",), generation=old_generation) is None
        assert cache.get(("fresh",), generation=fresh_generation) == (
            "fresh-value",
        )

    def test_query_feature_key_normalizes_surface_forms(self):
        assert query_feature_key(Query.parse("Country | Currency")) == (
            query_feature_key(Query.parse("country|currency"))
        )

    def test_capacity_zero_disables_without_changing_results(self, probe_setup):
        query, tables, stats = probe_setup
        cache = FeatureCache(capacity=0)
        problem = build_problem(
            query, tables, stats, DEFAULT_PARAMS, feature_cache=cache
        )
        assert len(cache) == 0
        self._problems_equal(
            problem, build_problem(query, tables, stats, DEFAULT_PARAMS)
        )


class TestServiceHotPath:
    """End-to-end: the serving facade with and without memoization."""

    def test_answers_identical_with_and_without_feature_cache(self, small_env):
        corpus = small_env.synthetic.corpus
        queries = [wq.query for wq in small_env.queries[:6]]
        memoized = WWTService(corpus, EngineConfig())
        plain = WWTService(
            corpus, EngineConfig(feature_cache_size=0, cache_size=0,
                                 probe_cache_size=0)
        )
        for query in queries:
            a = memoized.answer_full(query)
            b = plain.answer_full(query)
            assert a.answer.rows == b.answer.rows
            assert a.mapping.labels == b.mapping.labels
        stats = memoized.stats()
        assert stats.feature_cache.hits > 0
        assert "feature_cache" in stats.to_dict()

    def test_clear_caches_drops_feature_entries(self, small_env):
        service = WWTService(small_env.synthetic.corpus, EngineConfig())
        service.answer_full(small_env.queries[0].query)
        assert len(service._feature_cache) > 0
        service.clear_caches()
        assert len(service._feature_cache) == 0

    def test_pmi_configured_service_builds_shared_scorer(self, small_env):
        config = EngineConfig(params=ModelParams(w3=0.05))
        service = WWTService(small_env.synthetic.corpus, config)
        assert service._pmi_scorer is not None
        response = service.answer(small_env.queries[0].query)
        assert response.total_rows >= 0
        # The corpus-level caches saw traffic from the containment probes.
        h_stats = service._pmi_scorer._h_cache.stats()
        b_stats = service._pmi_scorer._b_cache.stats()
        assert h_stats["misses"] + b_stats["misses"] > 0
        service.clear_caches()
        assert len(service._pmi_scorer._h_cache) == 0


class TestPmiPromotedCaches:
    """Shared bounded H/B caches reuse probes across scorers."""

    @staticmethod
    def make_index():
        index = InvertedIndex()
        index.add_text_document(
            "t1",
            {"header": "explorer nationality", "context": "famous explorers",
             "content": "magellan portugal"},
        )
        index.add_text_document(
            "t2",
            {"header": "explorer ship", "context": "",
             "content": "magellan victoria"},
        )
        return index

    def test_shared_caches_hit_across_scorers(self):
        table = WebTable.from_rows(
            [["magellan"], ["cook"]], header=["explorer"], table_id="w1"
        )
        index = self.make_index()
        h_cache, b_cache = BoundedCache(64), BoundedCache(1024)
        first = PmiScorer(index, h_cache=h_cache, b_cache=b_cache)
        score = first.score("explorer", table, 0)
        hits_before = h_cache.hits + b_cache.hits
        second = PmiScorer(index, h_cache=h_cache, b_cache=b_cache)
        assert second.score("explorer", table, 0) == score
        assert h_cache.hits + b_cache.hits > hits_before

    def test_bounded_cache_eviction_only_recomputes(self):
        table = WebTable.from_rows(
            [["magellan"], ["cook"]], header=["explorer"], table_id="w1"
        )
        index = self.make_index()
        unbounded = PmiScorer(index)
        tiny = PmiScorer(index, h_cache=BoundedCache(1), b_cache=BoundedCache(1))
        for col_query in ("explorer", "ship", "explorer"):
            assert tiny.score(col_query, table, 0) == unbounded.score(
                col_query, table, 0
            )

    def test_bounded_cache_contract(self):
        cache = BoundedCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1
        cache.put("c", 3)  # evicts "b" (LRU)
        assert "b" not in cache and "a" in cache and "c" in cache
        assert cache.get("b") is None
        stats = cache.stats()
        assert stats["hits"] == 1 and stats["misses"] == 1
        assert stats["hit_rate"] == 0.5
        with pytest.raises(ValueError):
            BoundedCache(-1)
