"""Tests for problem assembly: node potentials, R, objective scoring."""


import pytest

from repro.core.model import build_problem
from repro.core.params import DEFAULT_PARAMS, UNSEGMENTED_PARAMS
from repro.query.model import Query
from repro.tables.table import ContextSnippet, WebTable

from .conftest import make_problem


def explorer_table(table_id="t0"):
    return WebTable.from_rows(
        [
            ["Abel Tasman", "Dutch", "Oceania"],
            ["Vasco da Gama", "Portuguese", "Sea route to India"],
        ],
        header=["Explorer", "Nationality", "Areas explored"],
        table_id=table_id,
    )


def forest_table(table_id="t1"):
    return WebTable.from_rows(
        [["7", "Shakespeare Hills", "2236"], ["9", "Plains Creek", "880"]],
        header=["ID", "Name", "Area"],
        table_id=table_id,
    )


class TestBuildProblem:
    def test_node_potentials_favor_matching_columns(self):
        query = Query.parse("explorer | nationality | areas explored")
        problem = build_problem(query, [explorer_table()])
        # Column 0 should prefer label 1, column 1 label 2, column 2 label 3.
        for ci, expected in ((0, 0), (1, 1), (2, 2)):
            theta = problem.node_potentials[(0, ci)]
            best_query_label = max(
                problem.labels.query_labels(), key=lambda l: theta[l]
            )
            assert best_query_label == expected

    def test_irrelevant_table_prefers_nr(self):
        query = Query.parse("explorer | nationality | areas explored")
        problem = build_problem(query, [forest_table()])
        from repro.inference import independent_inference

        result = independent_inference(problem)
        assert not result.is_relevant(0)

    def test_relevance_feature_in_range(self):
        query = Query.parse("explorer | nationality")
        problem = build_problem(query, [explorer_table(), forest_table()])
        for r in problem.table_relevance:
            assert 0.0 <= r <= 1.0

    def test_na_potential_is_zero(self):
        query = Query.parse("explorer | nationality")
        problem = build_problem(query, [explorer_table()])
        for tc in problem.columns():
            assert problem.node_potentials[tc][problem.labels.na] == 0.0

    def test_nr_potential_uses_width_scaling(self):
        # Eq. 3: nr potential carries min(q, nt)/nt.
        query = Query.parse("zzz | yyy")  # matches nothing: R = 0
        wide = WebTable.from_rows(
            [["a", "b", "c", "d"]], header=["w", "x", "y", "z"], table_id="w"
        )
        narrow = WebTable.from_rows([["a", "b"]], header=["w", "x"], table_id="n")
        problem = build_problem(query, [wide, narrow])
        p = problem.params
        assert problem.node_potentials[(0, 0)][problem.labels.nr] == pytest.approx(
            p.w4 * (2 / 4)
        )
        assert problem.node_potentials[(1, 0)][problem.labels.nr] == pytest.approx(
            p.w4 * (2 / 2)
        )

    def test_unsegmented_params_change_features(self):
        query = Query.parse("nobel prize winner")
        table = WebTable.from_rows(
            [["Marie Curie"], ["Albert Einstein"]],
            header=["Winner"],
            table_id="t",
        )
        table.context.append(ContextSnippet("Nobel prize laureates", 0.9))
        seg = build_problem(query, [table], params=DEFAULT_PARAMS)
        unseg = build_problem(query, [table], params=UNSEGMENTED_PARAMS)
        # Segmented similarity exploits the context; unsegmented cannot.
        assert seg.features[(0, 0)].segsim[0] > unseg.features[(0, 0)].segsim[0]


class TestWithParams:
    def test_reweighting_matches_rebuild(self):
        query = Query.parse("explorer | nationality")
        tables = [explorer_table(), forest_table()]
        base = build_problem(query, tables, params=DEFAULT_PARAMS)
        new_params = DEFAULT_PARAMS.with_values(w1=2.0, w4=1.0, w5=-0.5)
        fast = base.with_params(new_params)
        slow = build_problem(query, tables, params=new_params)
        for tc in base.columns():
            for l in base.labels.all_labels():
                assert fast.node_potentials[tc][l] == pytest.approx(
                    slow.node_potentials[tc][l]
                )

    def test_reweighting_shares_features(self):
        problem = make_problem("a", [1], {(0, 0): [1.0, 0.0, 0.1]})
        other = problem.with_params(problem.params.with_values(w4=2.0))
        assert other.features is problem.features
        assert other.edges is problem.edges


class TestObjective:
    def test_score_includes_edges_when_confident(self):
        problem = make_problem(
            "a",
            [1, 1],
            {(0, 0): [1.0, 0.0, 0.1], (1, 0): [1.0, 0.0, 0.1]},
            edges=[((0, 0), (1, 0), 0.5)],
        )
        y_same = {(0, 0): 0, (1, 0): 0}
        confident = {(0, 0): True, (1, 0): True}
        with_edges = problem.score(y_same, confident)
        expected = 2.0 + problem.params.we * (0.5 + 0.5)
        assert with_edges == pytest.approx(expected)

    def test_no_edge_reward_for_nr_agreement(self):
        problem = make_problem(
            "a",
            [1, 1],
            {(0, 0): [0.0, 0.0, 1.0], (1, 0): [0.0, 0.0, 1.0]},
            edges=[((0, 0), (1, 0), 0.5)],
        )
        nr = problem.labels.nr
        score = problem.score({(0, 0): nr, (1, 0): nr})
        assert score == pytest.approx(2.0)  # node potentials only

    def test_constraint_violations_score_neg_inf(self):
        problem = make_problem(
            "a | b",
            [2],
            {(0, 0): [1.0, 0.0, 0.0, 0.1], (0, 1): [0.0, 1.0, 0.0, 0.1]},
        )
        y_mutex = {(0, 0): 0, (0, 1): 0}
        assert problem.score(y_mutex) == float("-inf")
        nr = problem.labels.nr
        y_half_nr = {(0, 0): nr, (0, 1): 1}
        assert problem.score(y_half_nr) == float("-inf")

    def test_min_match_clamped_for_narrow_tables(self):
        problem = make_problem("a | b | c", [2], {
            (0, 0): [1.0, 0.0, 0.0, 0.0, 0.1],
            (0, 1): [0.0, 1.0, 0.0, 0.0, 0.1],
        })
        assert problem.min_match(0) == 2
        narrow = make_problem("a | b | c", [1], {
            (0, 0): [1.0, 0.0, 0.0, 0.0, 0.1],
        })
        assert narrow.min_match(0) == 1
