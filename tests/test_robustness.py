"""Robustness and failure-injection tests across the substrates."""

import json
import random

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.corpus.domains import REGISTRY
from repro.corpus.pages import render_page
from repro.flow.network import FlowNetwork
from repro.html.parser import parse_html
from repro.index.store import TableStore
from repro.inference.base import softmax
from repro.tables.extractor import extract_tables
from repro.tables.table import WebTable


class TestMinCostFlowVsNetworkx:
    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.integers(0, 4), st.integers(0, 4),
                st.integers(1, 5), st.integers(-4, 6),
            ).filter(lambda e: e[0] < e[1]),  # DAG: SSP's precondition
            min_size=1,
            max_size=10,
        )
    )
    def test_total_cost_matches(self, raw_edges):
        """Min-cost max-flow cost agrees with networkx's max_flow_min_cost.

        Successive shortest paths requires a graph with no negative-cost
        directed cycles (the matching reductions of Section 4 are DAGs);
        edges are restricted to u < v accordingly.
        """
        merged = {}
        for u, v, cap, cost in raw_edges:
            key = (u, v)
            if key in merged:
                continue  # keep first; parallel edges complicate nx graphs
            merged[key] = (cap, cost)

        net = FlowNetwork(5)
        g = nx.DiGraph()
        g.add_nodes_from(range(5))
        for (u, v), (cap, cost) in merged.items():
            net.add_edge(u, v, float(cap), float(cost))
            g.add_edge(u, v, capacity=cap, weight=cost)

        flow_value, flow_cost = net.min_cost_max_flow(0, 4)
        nx_value = nx.maximum_flow_value(g, 0, 4) if g.has_node(4) else 0
        assert abs(flow_value - nx_value) < 1e-6
        if nx_value > 0:
            # Among max flows, ours must be min cost: compare to networkx.
            flow_dict = nx.max_flow_min_cost(g, 0, 4)
            nx_cost = nx.cost_of_flow(g, flow_dict)
            assert flow_cost <= nx_cost + 1e-6


class TestPageNoiseProperties:
    @settings(max_examples=25, deadline=None)
    @given(st.integers(0, 10_000))
    def test_every_page_extracts_exactly_one_data_table(self, seed):
        rng = random.Random(seed)
        domain = REGISTRY[sorted(REGISTRY)[seed % len(REGISTRY)]]
        page = render_page(domain, 0, rng)
        tables = extract_tables(parse_html(page.html))
        data = [t for t in tables if t.num_cols == len(page.column_attrs)]
        assert len(data) == 1

    @settings(max_examples=25, deadline=None)
    @given(st.integers(0, 10_000))
    def test_body_rows_come_from_relation(self, seed):
        rng = random.Random(seed)
        domain = REGISTRY["explorers"]
        page = render_page(domain, 0, rng)
        [table] = [
            t for t in extract_tables(parse_html(page.html))
            if t.num_cols == len(page.column_attrs)
        ]
        subject_pos = page.column_attrs.index("explorer")
        names = {r[0] for r in domain.rows}
        for value in table.column_values(subject_pos):
            assert value in names


class TestStoreFailureInjection:
    def test_corrupt_line_raises_cleanly(self, tmp_path):
        path = tmp_path / "broken.jsonl"
        good = WebTable.from_rows([["a", "b"]], table_id="ok").to_dict()
        path.write_text(json.dumps(good) + "\nnot json at all\n")
        with pytest.raises(ValueError, match=r"broken\.jsonl:2: invalid table JSON"):
            TableStore.load(path)

    def test_missing_field_raises_cleanly(self, tmp_path):
        path = tmp_path / "broken.jsonl"
        good = WebTable.from_rows([["a", "b"]], table_id="ok").to_dict()
        del good["grid"]
        path.write_text(json.dumps(good) + "\n")
        with pytest.raises(KeyError):
            TableStore.load(path)

    def test_blank_lines_tolerated(self, tmp_path):
        path = tmp_path / "blanky.jsonl"
        good = WebTable.from_rows([["a", "b"]], table_id="ok").to_dict()
        path.write_text("\n" + json.dumps(good) + "\n\n")
        store = TableStore.load(path)
        assert len(store) == 1

    def test_unicode_roundtrip(self, tmp_path):
        table = WebTable.from_rows(
            [["Popocatépetl", "5426"], ["日本", "Yen"]],
            header=["名前", "value"],
            table_id="uni",
        )
        path = tmp_path / "uni.jsonl"
        TableStore([table]).save(path)
        loaded = TableStore.load(path).get("uni")
        assert loaded.column_values(0) == ["Popocatépetl", "日本"]


class TestSoftmax:
    def test_sums_to_one(self):
        probs = softmax([1.0, 2.0, 3.0])
        assert abs(sum(probs) - 1.0) < 1e-12

    def test_handles_neg_inf(self):
        probs = softmax([0.0, float("-inf"), 0.0])
        assert probs[1] == 0.0
        assert abs(probs[0] - 0.5) < 1e-12

    def test_all_neg_inf(self):
        assert softmax([float("-inf")] * 3) == [0.0, 0.0, 0.0]

    def test_large_values_stable(self):
        probs = softmax([1e6, 1e6 + 1])
        assert abs(sum(probs) - 1.0) < 1e-12
        assert probs[1] > probs[0]

    @given(st.lists(st.floats(-50, 50), min_size=1, max_size=6))
    def test_monotone(self, values):
        probs = softmax(values)
        order = sorted(range(len(values)), key=lambda i: values[i])
        sorted_probs = [probs[i] for i in order]
        assert all(
            a <= b + 1e-12 for a, b in zip(sorted_probs, sorted_probs[1:])
        )


class TestHtmlTorture:
    CASES = [
        "<table><tr><td>&#9999999;</td></tr></table>",
        "<table>" * 30,
        "<tr><td>orphan cells</td></tr>",
        "<table><tr><td colspan='9999'>wide</td></tr></table>",
        "<table><thead><tr><th>h</th></tr></thead><tbody></tbody></table>",
        "<!DOCTYPE html><!-- comment --><table><tr><td>x</td></tr></table>",
        "<table><tr><td><script>alert('x')</script>body</td></tr></table>",
    ]

    @pytest.mark.parametrize("html", CASES)
    def test_never_raises(self, html):
        extract_tables(parse_html(html))  # must not raise

    def test_deeply_nested_tables(self):
        html = ("<table><tr><td>" * 12) + "x" + ("</td></tr></table>" * 12)
        extract_tables(parse_html(html))
