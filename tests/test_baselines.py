"""Tests for the Basic / NbrText / PMI² baselines."""


from repro.baselines.basic import (
    BasicParams,
    assign_columns,
    basic_method,
    column_header_similarity,
    table_relevance_similarity,
)
from repro.baselines.nbrtext import nbrtext_method
from repro.baselines.pmi_baseline import pmi_method
from repro.core.labels import LabelSpace
from repro.core.pmi import PmiScorer
from repro.index.inverted import InvertedIndex
from repro.query.model import Query
from repro.tables.table import ContextSnippet, WebTable


def explorer_table(table_id="t0"):
    t = WebTable.from_rows(
        [
            ["Abel Tasman", "Dutch", "Oceania"],
            ["Vasco da Gama", "Portuguese", "Sea route to India"],
        ],
        header=["Explorer", "Nationality", "Areas explored"],
        table_id=table_id,
    )
    t.context.append(ContextSnippet("List of explorers in history", 0.9))
    return t


def offtopic_table(table_id="t1"):
    return WebTable.from_rows(
        [["7", "Shakespeare Hills", "2236"]],
        header=["ID", "Name", "Area"],
        table_id=table_id,
    )


class TestBasic:
    def test_maps_matching_table(self):
        query = Query.parse("explorer | nationality")
        result = basic_method(query, [explorer_table()])
        assert result.labels[(0, 0)] == 0
        assert result.labels[(0, 1)] == 1
        assert result.labels[(0, 2)] == result.label_space.na

    def test_rejects_offtopic_table(self):
        query = Query.parse("explorer | nationality")
        result = basic_method(query, [offtopic_table()])
        nr = result.label_space.nr
        assert all(l == nr for l in result.labels.values())

    def test_relevance_threshold_gates(self):
        query = Query.parse("explorer | nationality")
        strict = BasicParams(relevance_threshold=0.99, column_threshold=0.1)
        result = basic_method(query, [explorer_table()], params=strict)
        nr = result.label_space.nr
        assert all(l == nr for l in result.labels.values())

    def test_column_threshold_gates(self):
        # An exact header match scores cosine 1.0, so the gate must sit
        # above that to suppress everything.
        query = Query.parse("explorer | nationality")
        strict = BasicParams(relevance_threshold=0.01, column_threshold=1.01)
        result = basic_method(query, [explorer_table()], params=strict)
        nr = result.label_space.nr
        assert all(l == nr for l in result.labels.values())

    def test_table_relevance_similarity_positive_for_match(self):
        query = Query.parse("explorer | nationality")
        assert table_relevance_similarity(query, explorer_table(), None) > 0.2
        assert (
            table_relevance_similarity(query, offtopic_table(), None) < 0.1
        )

    def test_assign_columns_respects_mutex(self):
        query = Query.parse("a | b")
        sims = [[0.9, 0.8], [0.85, 0.2]]
        mapped = assign_columns(query, sims, 0.1, LabelSpace(2))
        assert sorted(mapped.values()) == [0, 1]
        assert len(set(mapped.values())) == 2

    def test_column_header_similarity_shape(self):
        query = Query.parse("explorer | nationality")
        sims = column_header_similarity(query, explorer_table(), 0, None)
        assert len(sims) == 2
        assert sims[0] > sims[1]


class TestNbrText:
    def test_import_rescues_vague_header(self):
        query = Query.parse("explorer | nationality")
        good = explorer_table()
        vague = WebTable.from_rows(
            [
                ["Abel Tasman", "Dutch"],
                ["Vasco da Gama", "Portuguese"],
            ],
            header=["Name", "Info"],
            table_id="v",
        )
        vague.context.append(ContextSnippet("List of explorers", 0.9))
        base = basic_method(query, [good, vague])
        boosted = nbrtext_method(query, [good, vague])
        # Basic cannot map the vague column; NbrText imports "Explorer".
        assert base.labels[(1, 0)] != 0
        assert boosted.labels[(1, 0)] == 0

    def test_no_import_without_content_overlap(self):
        query = Query.parse("explorer | nationality")
        good = explorer_table()
        unrelated = WebTable.from_rows(
            [["Rex", "Boxer"], ["Fido", "Beagle"]],
            header=["Name", "Info"],
            table_id="u",
        )
        result = nbrtext_method(query, [good, unrelated])
        nr = result.label_space.nr
        assert all(
            result.labels[(1, ci)] == nr for ci in range(unrelated.num_cols)
        )


class TestPmi:
    def make_index(self):
        index = InvertedIndex()
        index.add_text_document(
            "e1",
            {
                "header": "explorer nationality",
                "context": "list of explorers",
                "content": "abel tasman dutch vasco da gama portuguese",
            },
        )
        index.add_text_document(
            "e2",
            {
                "header": "explorer areas",
                "context": "famous explorers",
                "content": "abel tasman oceania james cook pacific",
            },
        )
        index.add_text_document(
            "m1",
            {
                "header": "movie year",
                "context": "films",
                "content": "alien 1979 blade runner 1982",
            },
        )
        return index

    def test_scorer_prefers_associated_column(self):
        index = self.make_index()
        scorer = PmiScorer(index)
        table = explorer_table()
        explorer_score = scorer.score("explorer", table, 0)
        nationality_score = scorer.score("explorer", table, 1)
        assert explorer_score > nationality_score

    def test_scorer_zero_when_query_unknown(self):
        scorer = PmiScorer(self.make_index())
        assert scorer.score("zebra stripes", explorer_table(), 0) == 0.0

    def test_scorer_caches(self):
        scorer = PmiScorer(self.make_index())
        scorer.score("explorer", explorer_table(), 0)
        assert "explorer" in scorer._h_cache

    def test_pmi_method_runs(self):
        query = Query.parse("explorer | nationality")
        index = self.make_index()
        result = pmi_method(query, [explorer_table()], index)
        assert result.labels[(0, 0)] == 0
