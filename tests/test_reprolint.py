"""Fixture-based self-tests for the reprolint invariant linter.

Every rule R001-R009 is exercised against a positive fixture (code that
must be flagged, with pinned line numbers) and a negative fixture (the
compliant counterpart, which must be clean); the scoped rules (R003,
R006, R008) additionally prove the same code is *not* flagged outside
their packages.  The hygiene fixtures pin the disable-comment grammar: a
reasoned disable suppresses exactly its target, while bare, unknown-id,
and malformed disables are themselves errors (R000).  Finally, the
linter must run green over the real ``src/``, ``benchmarks/``, and
``tools/`` trees — the repo-wide invariant gate CI enforces.
"""

import subprocess
import sys
import unittest
from pathlib import Path

from tools.reprolint import (
    ALL_RULES,
    RULES_BY_ID,
    lint_file,
    lint_paths,
)
from tools.reprolint.engine import iter_python_files, parse_suppressions

REPO = Path(__file__).resolve().parents[1]
FIXTURES = REPO / "tests" / "fixtures" / "reprolint"
FIXTURE_SRC = FIXTURES / "src"


def lint_fixture(relpath):
    """Lint one fixture file with the fixture tree as the src root."""
    return lint_file(FIXTURES / relpath, src_root=FIXTURE_SRC)


def lines_of(violations, rule_id):
    return [v.line for v in violations if v.rule_id == rule_id]


class TestRuleCatalog(unittest.TestCase):
    def test_all_rules_registered_in_order(self):
        self.assertEqual(
            [rule.id for rule in ALL_RULES],
            ["R001", "R002", "R003", "R004", "R005", "R006", "R007",
             "R008", "R009"],
        )

    def test_every_rule_has_title_and_docstring(self):
        for rule in ALL_RULES:
            self.assertTrue(rule.title, rule.id)
            self.assertTrue((rule.__doc__ or "").strip(), rule.id)

    def test_lookup_by_id(self):
        self.assertIs(RULES_BY_ID["R009"], ALL_RULES[-1])


class TestR001WallClock(unittest.TestCase):
    def test_positive(self):
        violations = lint_fixture("src/repro/service/r001_pos.py")
        self.assertEqual(lines_of(violations, "R001"), [5, 9, 10, 14])
        self.assertEqual(len(violations), 4)

    def test_negative_seam_usage_is_clean(self):
        self.assertEqual(lint_fixture("src/repro/service/r001_neg.py"), [])

    def test_negative_clock_seam_module_is_exempt(self):
        self.assertEqual(lint_fixture("src/repro/exec/context.py"), [])


class TestR002UnseededRandom(unittest.TestCase):
    def test_positive(self):
        violations = lint_fixture("src/repro/core/r002_pos.py")
        self.assertEqual(lines_of(violations, "R002"), [4, 6, 10, 11])

    def test_negative_explicit_rng_is_clean(self):
        self.assertEqual(lint_fixture("src/repro/core/r002_neg.py"), [])


class TestR003UnorderedIteration(unittest.TestCase):
    def test_positive(self):
        violations = lint_fixture("src/repro/core/r003_pos.py")
        self.assertEqual(lines_of(violations, "R003"), [6, 10, 14, 19])

    def test_negative_ordered_iteration_is_clean(self):
        self.assertEqual(lint_fixture("src/repro/core/r003_neg.py"), [])

    def test_negative_out_of_scope_package(self):
        self.assertEqual(
            lint_fixture("src/other/pkg/r003_out_of_scope.py"), []
        )


class TestR004UnboundedCache(unittest.TestCase):
    def test_positive(self):
        violations = lint_fixture("src/repro/core/r004_pos.py")
        self.assertEqual(lines_of(violations, "R004"), [6, 10, 13, 14, 15])

    def test_negative_bounded_and_local_caches_are_clean(self):
        self.assertEqual(lint_fixture("src/repro/core/r004_neg.py"), [])


class TestR005LockDiscipline(unittest.TestCase):
    def test_positive(self):
        violations = lint_fixture("src/repro/core/r005_pos.py")
        self.assertEqual(lines_of(violations, "R005"), [18, 19])

    def test_negative_helpers_called_under_lock_are_clean(self):
        self.assertEqual(lint_fixture("src/repro/core/r005_neg.py"), [])


class TestR006SwallowedCancellation(unittest.TestCase):
    def test_positive(self):
        violations = lint_fixture("src/repro/exec/r006_pos.py")
        self.assertEqual(lines_of(violations, "R006"), [11, 18, 20])

    def test_negative_reraising_handlers_are_clean(self):
        self.assertEqual(lint_fixture("src/repro/exec/r006_neg.py"), [])

    def test_negative_out_of_scope_package(self):
        self.assertEqual(
            lint_fixture("src/other/pkg/r006_out_of_scope.py"), []
        )


class TestR007MutableDefault(unittest.TestCase):
    def test_positive(self):
        violations = lint_fixture("src/repro/core/r007_pos.py")
        self.assertEqual(lines_of(violations, "R007"), [6, 11, 16, 21])

    def test_negative_none_sentinels_are_clean(self):
        self.assertEqual(lint_fixture("src/repro/core/r007_neg.py"), [])


class TestR008UnrecordedRecovery(unittest.TestCase):
    def test_positive(self):
        violations = lint_fixture("src/repro/index/r008_pos.py")
        self.assertEqual(lines_of(violations, "R008"), [7, 16])

    def test_negative_recording_handlers_are_clean(self):
        self.assertEqual(lint_fixture("src/repro/index/r008_neg.py"), [])

    def test_negative_out_of_scope_package(self):
        self.assertEqual(
            lint_fixture("src/other/pkg/r008_out_of_scope.py"), []
        )


class TestR009ForkSafety(unittest.TestCase):
    def test_positive(self):
        violations = lint_fixture("src/repro/index/r009_pos.py")
        self.assertEqual(lines_of(violations, "R009"), [14, 15, 15, 22, 25])

    def test_negative_primitive_payloads_are_clean(self):
        self.assertEqual(lint_fixture("src/repro/index/r009_neg.py"), [])


class TestDisableHygiene(unittest.TestCase):
    def test_bare_disable_is_an_error_and_suppresses_nothing(self):
        violations = lint_fixture("hygiene/bare_disable.py")
        self.assertEqual(
            [(v.rule_id, v.line) for v in violations],
            [("R000", 4), ("R007", 4)],
        )

    def test_unknown_rule_id_is_an_error(self):
        violations = lint_fixture("hygiene/unknown_rule.py")
        self.assertEqual([v.rule_id for v in violations], ["R000"])
        self.assertIn("R999", violations[0].message)

    def test_malformed_directive_is_an_error(self):
        violations = lint_fixture("hygiene/malformed.py")
        self.assertEqual([v.rule_id for v in violations], ["R000"])
        self.assertIn("malformed", violations[0].message)

    def test_reasoned_line_disable_suppresses(self):
        self.assertEqual(lint_fixture("hygiene/good_disable.py"), [])

    def test_reasoned_file_disable_suppresses_whole_file(self):
        self.assertEqual(lint_fixture("hygiene/good_disable_file.py"), [])

    def test_syntax_error_is_reported_not_skipped(self):
        violations = lint_fixture("hygiene/syntax_error.py")
        self.assertEqual([v.rule_id for v in violations], ["R000"])
        self.assertIn("does not parse", violations[0].message)

    def test_line_disable_does_not_leak_to_other_lines(self):
        suppressions = parse_suppressions(
            Path("x.py"),
            "a = 1  # reprolint: disable=R007 -- pinned to this line\nb = 2\n",
        )
        self.assertEqual(suppressions.errors, [])
        self.assertEqual(suppressions.by_line, {1: {"R007"}})
        self.assertEqual(suppressions.file_wide, set())


class TestEngine(unittest.TestCase):
    def test_iter_python_files_recurses_and_sorts(self):
        files = iter_python_files([FIXTURES])
        self.assertEqual(files, sorted(files))
        self.assertIn(FIXTURES / "hygiene" / "bare_disable.py", files)
        self.assertIn(
            FIXTURES / "src" / "repro" / "core" / "r003_pos.py", files
        )

    def test_violations_sorted_by_position(self):
        violations = lint_fixture("src/repro/core/r004_pos.py")
        keys = [(v.line, v.col) for v in violations]
        self.assertEqual(keys, sorted(keys))

    def test_rule_filter(self):
        violations = lint_file(
            FIXTURES / "src" / "repro" / "service" / "r001_pos.py",
            src_root=FIXTURE_SRC,
            rules=[RULES_BY_ID["R007"]],
        )
        self.assertEqual(violations, [])

    def test_format_is_path_line_col_rule_message(self):
        violation = lint_fixture("src/repro/core/r007_pos.py")[0]
        formatted = violation.format()
        self.assertIn("r007_pos.py:6:", formatted)
        self.assertIn("R007", formatted)


class TestRepoIsClean(unittest.TestCase):
    """The gate itself: the real tree must be reprolint-green."""

    def test_src_benchmarks_tools_are_clean(self):
        violations = lint_paths(
            [REPO / "src", REPO / "benchmarks", REPO / "tools"],
            src_root=REPO / "src",
        )
        self.assertEqual(
            [v.format() for v in violations], [],
            "reprolint must stay green; fix or add a reasoned disable",
        )


class TestCli(unittest.TestCase):
    def run_cli(self, *args):
        return subprocess.run(
            [sys.executable, "-m", "tools.reprolint", *args],
            cwd=REPO, capture_output=True, text=True,
        )

    def test_exit_zero_on_clean_path(self):
        proc = self.run_cli("tools/reprolint/base.py")
        self.assertEqual(proc.returncode, 0, proc.stdout + proc.stderr)
        self.assertIn("clean", proc.stdout)

    def test_exit_one_on_violations(self):
        proc = self.run_cli(
            "--src-root", "tests/fixtures/reprolint/src",
            "tests/fixtures/reprolint/src/repro/core/r007_pos.py",
        )
        self.assertEqual(proc.returncode, 1, proc.stdout + proc.stderr)
        self.assertIn("R007", proc.stdout)

    def test_exit_two_on_unknown_rule(self):
        proc = self.run_cli("--rule", "R999")
        self.assertEqual(proc.returncode, 2)

    def test_list_rules_prints_catalog(self):
        proc = self.run_cli("--list-rules")
        self.assertEqual(proc.returncode, 0)
        for rule in ALL_RULES:
            self.assertIn(rule.id, proc.stdout)


if __name__ == "__main__":
    unittest.main()
