"""Generic-typing fixture for ``BoundedCache`` — checked by mypy, not pytest.

The CI typecheck job (and ``make typecheck``) runs
``mypy --strict src/repro tests/typing``: the correctly-typed functions
below must pass with zero ignores, while the deliberately mistyped lines
carry narrow ``type: ignore[code]`` comments.  Because the mypy config
sets ``warn_unused_ignores``, any future loosening of
:class:`~repro.core.features.BoundedCache`'s generics turns those ignores
into *unused-ignore errors* — the fixture fails the typecheck job in both
directions, pinning the ``BoundedCache[K, V]`` contract.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.core.features import BoundedCache


def typed_roundtrip() -> Optional[Tuple[float, int]]:
    """get() narrows to Optional[V]; put() accepts exactly (K, V)."""
    cache: BoundedCache[str, Tuple[float, int]] = BoundedCache(4)
    cache.put("key", (1.0, 2))
    if "key" in cache:
        return cache.get("key")
    return None


def value_requires_none_check() -> int:
    """The Optional returned by get() must be narrowed before use."""
    cache: BoundedCache[int, int] = BoundedCache(2)
    cache.put(1, 10)
    value = cache.get(1)
    return 0 if value is None else value


def rejects_wrong_key_type() -> None:
    """An int key into a str-keyed cache is a strict-mode error."""
    cache: BoundedCache[str, int] = BoundedCache(2)
    cache.put(3, 30)  # type: ignore[arg-type]


def rejects_wrong_value_type() -> None:
    """A str value into an int-valued cache is a strict-mode error."""
    cache: BoundedCache[str, int] = BoundedCache(2)
    cache.put("k", "v")  # type: ignore[arg-type]


# K is bound to Hashable, so a list-keyed cache cannot even be spelled.
UnhashableKeyCache = BoundedCache[List[int], int]  # type: ignore[type-var]
