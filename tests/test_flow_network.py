"""Tests for the flow network: max-flow vs networkx, min-cost-flow sanity."""

import itertools

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.flow.network import EPS, FlowNetwork


def random_digraph_strategy():
    """Small random capacitated digraphs as edge lists."""
    return st.lists(
        st.tuples(
            st.integers(0, 5), st.integers(0, 5), st.integers(1, 10)
        ).filter(lambda e: e[0] != e[1]),
        min_size=1,
        max_size=12,
    )


class TestMaxFlow:
    def test_single_edge(self):
        net = FlowNetwork(2)
        net.add_edge(0, 1, 5.0)
        assert net.max_flow(0, 1) == 5.0

    def test_two_disjoint_paths(self):
        net = FlowNetwork(4)
        net.add_edge(0, 1, 3.0)
        net.add_edge(1, 3, 3.0)
        net.add_edge(0, 2, 4.0)
        net.add_edge(2, 3, 2.0)
        assert net.max_flow(0, 3) == 5.0

    def test_bottleneck(self):
        net = FlowNetwork(3)
        net.add_edge(0, 1, 10.0)
        net.add_edge(1, 2, 1.0)
        assert net.max_flow(0, 2) == 1.0

    def test_no_path(self):
        net = FlowNetwork(3)
        net.add_edge(0, 1, 1.0)
        assert net.max_flow(0, 2) == 0.0

    def test_incremental_resume(self):
        # Fig. 4 relies on resuming max-flow after raising capacities.
        net = FlowNetwork(3)
        eid = net.add_edge(0, 1, 1.0)
        net.add_edge(1, 2, 10.0)
        assert net.max_flow(0, 2) == 1.0
        net.set_capacity(eid, 5.0)
        assert net.max_flow(0, 2) == 4.0  # only the increment

    def test_flow_limit(self):
        net = FlowNetwork(2)
        net.add_edge(0, 1, 10.0)
        assert net.max_flow(0, 1, limit=3.0) == 3.0

    @settings(max_examples=60, deadline=None)
    @given(random_digraph_strategy())
    def test_against_networkx(self, edges):
        net = FlowNetwork(6)
        g = nx.DiGraph()
        g.add_nodes_from(range(6))
        merged = {}
        for u, v, c in edges:
            merged[(u, v)] = merged.get((u, v), 0) + c
        for (u, v), c in merged.items():
            net.add_edge(u, v, float(c))
            g.add_edge(u, v, capacity=c)
        ours = net.max_flow(0, 5)
        theirs, _ = nx.maximum_flow(g, 0, 5)
        assert abs(ours - theirs) < 1e-6

    @settings(max_examples=40, deadline=None)
    @given(random_digraph_strategy())
    def test_min_cut_matches_flow(self, edges):
        net = FlowNetwork(6)
        merged = {}
        for u, v, c in edges:
            merged[(u, v)] = merged.get((u, v), 0) + c
        eids = {}
        for (u, v), c in merged.items():
            eids[(u, v)] = net.add_edge(u, v, float(c))
        value, t_side = net.min_cut(0, 5)
        # Cut capacity across the partition must equal the flow value.
        crossing = sum(
            c for (u, v), c in merged.items() if u not in t_side and v in t_side
        )
        assert abs(crossing - value) < 1e-6
        assert 0 not in t_side and 5 in t_side


class TestMinCostMaxFlow:
    def test_prefers_cheap_path(self):
        net = FlowNetwork(4)
        net.add_edge(0, 1, 1.0, cost=1.0)
        net.add_edge(1, 3, 1.0, cost=1.0)
        net.add_edge(0, 2, 1.0, cost=5.0)
        net.add_edge(2, 3, 1.0, cost=5.0)
        flow, cost = net.min_cost_max_flow(0, 3)
        assert flow == 2.0
        assert cost == 12.0

    def test_negative_costs_handled(self):
        net = FlowNetwork(3)
        net.add_edge(0, 1, 1.0, cost=-4.0)
        net.add_edge(1, 2, 1.0, cost=1.0)
        flow, cost = net.min_cost_max_flow(0, 2)
        assert flow == 1.0
        assert cost == -3.0

    def test_matches_networkx_cost(self):
        # Assignment-shaped instance with integer costs.
        weights = [[4, 1, 3], [2, 0, 5], [3, 2, 2]]
        net = FlowNetwork(8)  # s=0, t=1, left 2-4, right 5-7
        for i in range(3):
            net.add_edge(0, 2 + i, 1.0)
            net.add_edge(5 + i, 1, 1.0)
        for i in range(3):
            for j in range(3):
                net.add_edge(2 + i, 5 + j, 1.0, cost=float(weights[i][j]))
        flow, cost = net.min_cost_max_flow(0, 1)
        assert flow == 3.0

        best = min(
            sum(weights[i][p[i]] for i in range(3))
            for p in itertools.permutations(range(3))
        )
        assert abs(cost - best) < 1e-9

    def test_residual_no_negative_improvement(self):
        # After SSP min-cost flow, Bellman-Ford from source must converge
        # (no negative cycles in the residual graph).
        net = FlowNetwork(5)
        net.add_edge(0, 1, 2.0, cost=-1.0)
        net.add_edge(1, 2, 1.0, cost=2.0)
        net.add_edge(1, 3, 1.0, cost=-2.0)
        net.add_edge(2, 4, 2.0, cost=0.0)
        net.add_edge(3, 4, 1.0, cost=1.0)
        net.min_cost_max_flow(0, 4)
        dist = net.residual_shortest_paths(0)
        for u in range(net.num_nodes):
            if dist[u] == float("inf"):
                continue
            for eid in net.adj[u]:
                if net.residual(eid) > EPS:
                    assert dist[net.to[eid]] <= dist[u] + net.cost[eid] + 1e-6


class TestNetworkBasics:
    def test_invalid_edge_raises(self):
        net = FlowNetwork(2)
        with pytest.raises(IndexError):
            net.add_edge(0, 5, 1.0)
        with pytest.raises(ValueError):
            net.add_edge(0, 1, -1.0)

    def test_clone_is_independent(self):
        net = FlowNetwork(2)
        net.add_edge(0, 1, 1.0)
        clone = net.clone()
        clone.max_flow(0, 1)
        assert net.flow[0] == 0.0
        assert clone.flow[0] == 1.0

    def test_edge_tail(self):
        net = FlowNetwork(3)
        eid = net.add_edge(1, 2, 1.0)
        assert net.edge_tail(eid) == 1
        assert net.edge_tail(eid ^ 1) == 2

    def test_add_node(self):
        net = FlowNetwork(1)
        nid = net.add_node()
        assert nid == 1
        assert net.num_nodes == 2
