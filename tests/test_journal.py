"""Tests for ``repro.index.journal``: live mutation, crash recovery,
ranking equivalence against full rebuilds, and the no-reindex guarantee."""


import pytest

from repro.index import (
    IndexedCorpus,
    InvertedIndex,
    JournaledCorpus,
    ShardedCorpus,
    build_corpus_index,
    build_sharded_corpus,
    load_corpus,
)
from repro.index.builder import JOURNAL_FILE, read_manifest
from repro.index.journal import append_records, read_journal
from repro.pipeline.probe import ProbeConfig, two_stage_probe
from repro.query.workload import WORKLOAD
from repro.service import EngineConfig, WWTService
from repro.tables.table import WebTable


def make_tables(n=12, prefix="t", start=0):
    return [
        WebTable.from_rows(
            [[f"val{i}a", f"{i}"], [f"val{i}b", f"{i + 1}"]],
            header=["name", "rank"],
            table_id=f"{prefix}{i}",
        )
        for i in range(start, start + n)
    ]


@pytest.fixture(scope="module")
def corpus_tables(small_env):
    """The small shared environment's extracted tables, in index order."""
    return list(small_env.synthetic.corpus.store)


def built_dir(tmp_path, tables, num_shards=None, name="c"):
    """Build + persist, then reload the journal-aware way."""
    build_corpus_index(tables, num_shards=num_shards, save=tmp_path / name)
    return load_corpus(tmp_path / name)


def hits_of(corpus, terms, limit=60):
    return [(h.doc_id, round(h.score, 9)) for h in corpus.search(terms, limit=limit)]


class TestMutation:
    def test_added_tables_visible_immediately(self, tmp_path):
        corpus = built_dir(tmp_path, make_tables(8), num_shards=2)
        new = make_tables(2, prefix="new", start=0)
        assert corpus.add_tables(new) == 2
        assert corpus.num_tables == 10
        assert "new0" in corpus
        assert corpus.get_table("new1").table_id == "new1"
        assert {h.doc_id for h in corpus.search(["name"], limit=20)} >= {
            "new0", "new1"
        }
        assert "new0" in corpus.docs_containing_all(["name"], ["header"])

    def test_deleted_tables_invisible_immediately(self, tmp_path):
        corpus = built_dir(tmp_path, make_tables(8), num_shards=2)
        corpus.delete_tables(["t3"])
        assert corpus.num_tables == 7
        assert "t3" not in corpus
        assert "t3" not in {h.doc_id for h in corpus.search(["name"], limit=20)}
        assert "t3" not in corpus.docs_containing_all(["name"], ["header"])
        assert corpus.get_many(["t3", "t4"]) == [corpus.get_table("t4")]
        with pytest.raises(KeyError):
            corpus.get_table("t3")

    def test_delete_of_journaled_add(self, tmp_path):
        corpus = built_dir(tmp_path, make_tables(6))
        corpus.add_tables(make_tables(2, prefix="new"))
        corpus.delete_tables(["new0"])
        assert corpus.num_tables == 7
        assert "new0" not in corpus and "new1" in corpus
        assert corpus.journal_depth == 3
        # The WAL is append-only: reload replays add then delete.
        reloaded = load_corpus(tmp_path / "c")
        assert sorted(reloaded.ids()) == sorted(corpus.ids())

    def test_duplicate_and_unknown_ids_rejected_atomically(self, tmp_path):
        corpus = built_dir(tmp_path, make_tables(4))
        with pytest.raises(ValueError, match="already in corpus"):
            corpus.add_tables(make_tables(1, prefix="t"))
        with pytest.raises(ValueError, match="in batch"):
            corpus.add_tables(
                make_tables(1, prefix="x") + make_tables(1, prefix="x")
            )
        with pytest.raises(KeyError):
            corpus.delete_tables(["t0", "nope"])
        # Failed batches must leave no partial state and no journal records.
        assert corpus.num_tables == 4
        assert "t0" in corpus
        assert corpus.journal_depth == 0

    def test_delete_then_readd_same_id(self, tmp_path):
        corpus = built_dir(tmp_path, make_tables(4), num_shards=2)
        replacement = WebTable.from_rows(
            [["fresh", "1"]], header=["name", "rank"], table_id="t2"
        )
        corpus.delete_tables(["t2"])
        corpus.add_tables([replacement])
        assert corpus.num_tables == 4
        assert corpus.get_table("t2").body_cell(0, 0).text == "fresh"
        reloaded = load_corpus(tmp_path / "c")
        assert reloaded.get_table("t2").body_cell(0, 0).text == "fresh"

    def test_ephemeral_journal_without_path(self, corpus_tables):
        base = build_sharded_corpus(corpus_tables[:-2], 2)
        corpus = JournaledCorpus(base)
        corpus.add_tables(corpus_tables[-2:])
        assert corpus.num_tables == len(corpus_tables)
        assert corpus.compact() == 2
        assert corpus.journal_depth == 0
        assert corpus.base.num_tables == len(corpus_tables)


class TestExportAndConcurrency:
    def test_save_exports_live_state_without_touching_journal(
        self, tmp_path
    ):
        """`save` must never drop journaled mutations (it folds a copy)."""
        corpus = built_dir(tmp_path, make_tables(10), num_shards=2)
        corpus.add_tables(make_tables(3, prefix="new"))
        corpus.delete_tables(["t1"])
        exported = corpus.save(tmp_path / "export")
        copy = load_corpus(exported)
        assert sorted(copy.ids()) == sorted(corpus.ids())
        assert copy.journal_depth == 0  # folded: nothing left to replay
        assert hits_of(copy, ["name"]) == hits_of(corpus, ["name"])
        # The source instance is untouched: same journal, same live state.
        assert corpus.journal_depth == 4
        assert corpus.base.num_tables == 10
        assert load_corpus(tmp_path / "c").journal_depth == 4

    def test_failed_append_rolls_back_cleanly(self, tmp_path, monkeypatch):
        """A mid-batch WAL failure must leave memory AND disk unchanged."""
        from repro.index import journal as journal_mod

        corpus = built_dir(tmp_path, make_tables(12), num_shards=4)
        state_before = sorted(corpus.ids())
        calls = {"n": 0}
        original = journal_mod.append_records

        def flaky(path, records):
            calls["n"] += 1
            if calls["n"] == 2:
                raise OSError("disk full")
            return original(path, records)

        monkeypatch.setattr(journal_mod, "append_records", flaky)
        batch = make_tables(8, prefix="new")  # spans several shards
        with pytest.raises(OSError):
            corpus.add_tables(batch)
        monkeypatch.setattr(journal_mod, "append_records", original)
        assert sorted(corpus.ids()) == state_before
        assert corpus.journal_depth == 0
        assert load_corpus(tmp_path / "c").num_tables == 12  # no resurrection
        # The journal stays usable after the rollback.
        corpus.add_tables(batch)
        assert load_corpus(tmp_path / "c").num_tables == 20

    def test_probes_concurrent_with_mutations(self, tmp_path):
        """Probes racing adds/deletes/compaction: no torn reads, no dups."""
        import threading

        corpus = built_dir(tmp_path, make_tables(30), num_shards=4)
        corpus.add_tables(make_tables(5, prefix="seed"))  # start dirty
        errors = []
        stop = threading.Event()

        def prober():
            try:
                while not stop.is_set():
                    hits = corpus.search(["name"], limit=40)
                    ids = [h.doc_id for h in hits]
                    assert len(ids) == len(set(ids)), "duplicate hits"
                    corpus.docs_containing_all(["name"], ["header"])
            except BaseException as exc:  # noqa: BLE001 - surfaced below
                errors.append(exc)

        threads = [threading.Thread(target=prober) for _ in range(3)]
        for t in threads:
            t.start()
        try:
            for i in range(12):
                corpus.add_tables(make_tables(3, prefix=f"w{i}_"))
                if i % 4 == 3:
                    corpus.delete_tables([f"w{i}_0"])
                    corpus.compact()
        finally:
            stop.set()
            for t in threads:
                t.join()
        assert not errors, errors[:1]

    def test_stale_window_serves_one_consistent_idf_vintage(self, tmp_path):
        """Within the staleness bound, cached and uncached terms must agree
        on the corpus vintage (here: the base, pre-sync)."""
        from repro.index.inverted import lucene_idf

        tables = make_tables(10)
        build_corpus_index(tables, save=tmp_path / "c")
        corpus = load_corpus(tmp_path / "c", stats_staleness=50)
        base = corpus.base
        corpus.add_tables(make_tables(4, prefix="new"))
        corpus.search(["name"], limit=5)  # populate some idf cache entries
        for term in ("name", "rank", "val2a"):  # mix of cached/uncached
            assert corpus._effective_idf(term) == pytest.approx(
                lucene_idf(
                    base.num_tables, base.index.document_frequency(term)
                ),
                abs=1e-12,
            )


class TestRankingEquivalence:
    """A journaled corpus must answer exactly like a full rebuild —
    acceptance regimes (a) non-empty journal and (b) post-compaction."""

    @pytest.fixture(scope="class")
    def split(self, corpus_tables):
        """(kept_base, added, deleted_ids, live_tables)."""
        base = corpus_tables[:-6]
        added = corpus_tables[-6:]
        deleted = [base[3].table_id, base[17].table_id]
        live = [t for t in base if t.table_id not in deleted] + added
        return base, added, deleted, live

    @pytest.mark.parametrize("k", [1, 2, 4])
    def test_journaled_matches_rebuild_full_workload(
        self, tmp_path, split, k
    ):
        base, added, deleted, live = split
        build_corpus_index(base, num_shards=k, save=tmp_path / f"c{k}")
        corpus = load_corpus(tmp_path / f"c{k}")
        corpus.add_tables(added)
        corpus.delete_tables(deleted)
        assert corpus.journal_depth == len(added) + len(deleted)
        rebuilt = build_sharded_corpus(live, k)
        for wq in WORKLOAD:
            tokens = wq.query.all_tokens()
            assert hits_of(corpus, tokens) == hits_of(rebuilt, tokens), (
                wq.query_id
            )
        assert corpus.stats.to_dict() == rebuilt.stats.to_dict()
        corpus.close()

    @pytest.mark.parametrize("k", [1, 2, 4])
    def test_compacted_matches_fresh_build_full_workload(
        self, tmp_path, split, k
    ):
        base, added, deleted, live = split
        build_corpus_index(base, num_shards=k, save=tmp_path / f"c{k}")
        corpus = load_corpus(tmp_path / f"c{k}")
        corpus.add_tables(added)
        corpus.delete_tables(deleted)
        assert corpus.compact() == len(added) + len(deleted)
        assert corpus.journal_depth == 0
        fresh = build_sharded_corpus(live, k)
        reloaded = load_corpus(tmp_path / f"c{k}")
        for wq in WORKLOAD:
            tokens = wq.query.all_tokens()
            expected = hits_of(fresh, tokens)
            assert hits_of(corpus, tokens) == expected, wq.query_id
            assert hits_of(reloaded, tokens) == expected, wq.query_id
        assert corpus.stats.to_dict() == fresh.stats.to_dict()
        corpus.close()
        reloaded.close()

    def test_two_stage_probe_matches_rebuild(self, tmp_path, split):
        base, added, deleted, live = split
        build_corpus_index(base, num_shards=2, save=tmp_path / "c")
        corpus = load_corpus(tmp_path / "c")
        corpus.add_tables(added)
        corpus.delete_tables(deleted)
        rebuilt = build_sharded_corpus(live, 2)
        config = ProbeConfig(seed=9)
        for wq in WORKLOAD[:8]:
            a = two_stage_probe(wq.query, corpus, config)
            b = two_stage_probe(wq.query, rebuilt, config)
            assert a.stage1_ids == b.stage1_ids, wq.query_id
            assert a.stage2_ids == b.stage2_ids, wq.query_id
            assert [t.table_id for t in a.tables] == [
                t.table_id for t in b.tables
            ]
        corpus.close()

    def test_untouched_corpus_stats_identity(self, tmp_path):
        """Empty journal: the wrapper serves the base's objects verbatim."""
        corpus = built_dir(tmp_path, make_tables(6), num_shards=2)
        assert corpus.stats is corpus.base.stats
        assert hits_of(corpus, ["name"]) == hits_of(corpus.base, ["name"])


class TestStaleness:
    def test_default_staleness_zero_is_exact(self, tmp_path):
        corpus = built_dir(tmp_path, make_tables(6))
        before = corpus.stats.num_docs
        corpus.add_tables(make_tables(1, prefix="new"))
        assert corpus.stats.num_docs == before + 1

    def test_positive_staleness_defers_stats_refresh(self, tmp_path):
        tables = make_tables(10)
        build_corpus_index(tables, save=tmp_path / "c")
        corpus = load_corpus(tmp_path / "c", stats_staleness=5)
        base_docs = corpus.base.stats.num_docs
        corpus.add_tables(make_tables(3, prefix="new"))
        # Within the bound: the derived stats may (and here do) lag...
        assert corpus.stats.num_docs == base_docs
        corpus.add_tables(make_tables(3, prefix="more"))
        # ...but past it the next read is exact.
        assert corpus.stats.num_docs == base_docs + 6
        # Visibility never lags: journaled tables are searchable at once.
        assert "more2" in {h.doc_id for h in corpus.search(["name"], limit=30)}

    def test_negative_staleness_rejected(self, tmp_path):
        build_corpus_index(make_tables(2), save=tmp_path / "c")
        with pytest.raises(ValueError, match="stats_staleness"):
            load_corpus(tmp_path / "c", stats_staleness=-1)


class TestCrashRecovery:
    def test_torn_final_append_is_dropped(self, tmp_path):
        corpus = built_dir(tmp_path, make_tables(8), num_shards=1)
        corpus.add_tables(make_tables(2, prefix="new"))
        journal = tmp_path / "c" / "shard-0000" / JOURNAL_FILE
        lines = journal.read_text().splitlines()
        torn = "\n".join(lines[:-1] + [lines[-1][: len(lines[-1]) // 2]])
        journal.write_text(torn + "\n")  # no trailing newline mid-record
        recovered = load_corpus(tmp_path / "c")
        assert recovered.num_tables == 9  # the torn add never committed
        assert "new0" in recovered and "new1" not in recovered
        # The journal stays writable: the torn seq is reused by the next add.
        recovered.add_tables(make_tables(1, prefix="again"))
        assert load_corpus(tmp_path / "c").num_tables == 10

    def test_corrupt_middle_record_names_path_and_line(self, tmp_path):
        corpus = built_dir(tmp_path, make_tables(4), num_shards=1)
        corpus.add_tables(make_tables(2, prefix="new"))
        journal = tmp_path / "c" / "shard-0000" / JOURNAL_FILE
        lines = journal.read_text().splitlines()
        lines[0] = lines[0][:10]  # corrupt a NON-final record
        journal.write_text("\n".join(lines) + "\n")
        with pytest.raises(ValueError, match=r"journal\.jsonl:1"):
            load_corpus(tmp_path / "c")

    def test_backwards_sequence_rejected(self, tmp_path):
        built_dir(tmp_path, make_tables(2), num_shards=1)
        journal = tmp_path / "c" / "shard-0000" / JOURNAL_FILE
        append_records(journal, [
            {"seq": 5, "op": "delete", "table_id": "t0"},
            {"seq": 4, "op": "delete", "table_id": "t1"},
            {"seq": 9, "op": "delete", "table_id": "t1"},  # non-final
        ])
        with pytest.raises(ValueError, match="backwards"):
            load_corpus(tmp_path / "c")

    def test_already_folded_records_are_skipped(self, tmp_path):
        """Records with seq <= manifest journal_seq were compacted in."""
        corpus = built_dir(tmp_path, make_tables(6), num_shards=1)
        corpus.add_tables(make_tables(1, prefix="new"))
        corpus.compact()
        # Simulate a resurrected pre-compaction journal fragment.
        append_records(
            tmp_path / "c" / "shard-0000" / JOURNAL_FILE,
            [{"seq": 1, "op": "add",
              "table": make_tables(1, prefix="new")[0].to_dict()}],
        )
        recovered = load_corpus(tmp_path / "c")
        assert recovered.num_tables == 7  # not applied twice
        assert recovered.journal_depth == 0

    def test_orphaned_compaction_tmp_dir_is_harmless(self, tmp_path):
        corpus = built_dir(tmp_path, make_tables(6), num_shards=2)
        corpus.add_tables(make_tables(2, prefix="new"))
        orphan = tmp_path / ".c.saving"
        orphan.mkdir()
        (orphan / "garbage.json").write_text("{")
        recovered = load_corpus(tmp_path / "c")
        assert recovered.num_tables == 8
        recovered.compact()
        assert not orphan.exists()  # pruned by the atomic writer
        assert load_corpus(tmp_path / "c").num_tables == 8

    def test_crash_between_compaction_renames_heals_on_load(self, tmp_path):
        corpus = built_dir(tmp_path, make_tables(6), num_shards=2)
        corpus.add_tables(make_tables(2, prefix="new"))
        # Simulate dying after `path -> backup` but before `tmp -> path`.
        (tmp_path / "c").rename(tmp_path / ".c.replaced")
        recovered = load_corpus(tmp_path / "c")
        assert recovered.num_tables == 8
        assert recovered.journal_depth == 2  # journal survived the crash
        assert not (tmp_path / ".c.replaced").exists()

    def test_snapshot_loaders_refuse_unfolded_journal(self, tmp_path):
        sharded = built_dir(tmp_path, make_tables(8), num_shards=2,
                            name="s")
        sharded.add_tables(make_tables(1, prefix="new"))
        with pytest.raises(ValueError, match="unfolded"):
            ShardedCorpus.load(tmp_path / "s")
        with pytest.raises(ValueError, match="unfolded"):
            load_corpus(tmp_path / "s", mutable=False)
        mono = built_dir(tmp_path, make_tables(8), name="m")
        mono.add_tables(make_tables(1, prefix="new"))
        with pytest.raises(ValueError, match="unfolded"):
            IndexedCorpus.load(tmp_path / "m")
        # After compaction the snapshot is complete again.
        mono.compact()
        assert IndexedCorpus.load(tmp_path / "m").num_tables == 9

    def test_compaction_removes_journals_and_advances_seq(self, tmp_path):
        corpus = built_dir(tmp_path, make_tables(8), num_shards=2)
        corpus.add_tables(make_tables(3, prefix="new"))
        corpus.delete_tables(["t1"])
        corpus.compact()
        assert list((tmp_path / "c").rglob(JOURNAL_FILE)) == []
        manifest = read_manifest(tmp_path / "c")
        assert manifest["journal_seq"] == 4
        assert manifest["num_tables"] == 10

    def test_read_journal_round_trip(self, tmp_path):
        journal = tmp_path / JOURNAL_FILE
        records = [
            {"seq": 1, "op": "add",
             "table": make_tables(1)[0].to_dict()},
            {"seq": 3, "op": "delete", "table_id": "t0"},
        ]
        append_records(journal, records)
        assert read_journal(journal) == records


class TestNoReindex:
    """Adding tables must never touch existing shard snapshots."""

    def counting(self, monkeypatch):
        calls = []
        original = InvertedIndex.add_document

        def counted(self, doc_id, fields):
            calls.append(doc_id)
            return original(self, doc_id, fields)

        monkeypatch.setattr(InvertedIndex, "add_document", counted)
        return calls

    def test_add_indexes_only_the_new_tables(self, tmp_path, monkeypatch):
        build_corpus_index(make_tables(40), num_shards=4, save=tmp_path / "c")
        corpus = load_corpus(tmp_path / "c")
        calls = self.counting(monkeypatch)
        corpus.add_tables(make_tables(1, prefix="new"))
        assert calls == ["new0"]  # 1 delta-index call; 0 shard re-indexing

    def test_addonly_compact_indexes_only_the_delta(
        self, tmp_path, monkeypatch
    ):
        build_corpus_index(make_tables(40), num_shards=4, save=tmp_path / "c")
        corpus = load_corpus(tmp_path / "c")
        corpus.add_tables(make_tables(2, prefix="new"))
        calls = self.counting(monkeypatch)
        corpus.compact()
        assert sorted(calls) == ["new0", "new1"]

    def test_delete_compact_reindexes_only_affected_shards(
        self, tmp_path, monkeypatch
    ):
        from repro.index import shard_of

        tables = make_tables(40)
        build_corpus_index(tables, num_shards=4, save=tmp_path / "c")
        corpus = load_corpus(tmp_path / "c")
        victim = tables[0].table_id
        shard = shard_of(victim, 4)
        shard_size = corpus.base.shard_sizes()[shard]
        corpus.delete_tables([victim])
        calls = self.counting(monkeypatch)
        corpus.compact()
        # Only the victim's shard is rebuilt (its survivors re-indexed).
        assert len(calls) == shard_size - 1


class TestServiceIntegration:
    def test_add_tables_passthrough_and_cache_invalidation(
        self, tmp_path, corpus_tables
    ):
        build_corpus_index(corpus_tables[:-4], num_shards=2,
                           save=tmp_path / "c")
        with WWTService(tmp_path / "c") as service:
            first = service.answer("country | currency")
            assert service.answer("country | currency").cache_hit
            assert service.add_tables(corpus_tables[-4:]) == 4
            after = service.answer("country | currency")
            assert not after.cache_hit  # caches dropped on mutation
            assert first.header == after.header
            assert service.corpus.journal_depth == 4
            assert service.compact() == 4
            assert service.corpus.journal_depth == 0

    def test_auto_compact_threshold(self, tmp_path):
        build_corpus_index(make_tables(10), num_shards=2, save=tmp_path / "c")
        config = EngineConfig(auto_compact_threshold=3)
        with WWTService(tmp_path / "c", config) as service:
            service.add_tables(make_tables(2, prefix="a"))
            assert service.corpus.journal_depth == 2  # below threshold
            service.add_tables(make_tables(2, prefix="b"))
            assert service.corpus.journal_depth == 0  # compacted at >= 3
            assert read_manifest(tmp_path / "c")["num_tables"] == 14

    def test_immutable_corpus_rejects_mutation(self, corpus_tables):
        service = WWTService(build_sharded_corpus(corpus_tables[:10], 2))
        with pytest.raises(ValueError, match="immutable"):
            service.add_tables(make_tables(1, prefix="new"))
        with pytest.raises(ValueError, match="immutable"):
            service.delete_tables(["x"])

    def test_config_round_trips_auto_compact(self):
        config = EngineConfig(auto_compact_threshold=100)
        assert EngineConfig.from_dict(config.to_dict()) == config
        with pytest.raises(ValueError, match="auto_compact_threshold"):
            EngineConfig(auto_compact_threshold=0)


class TestStreamingIngestion:
    def test_iter_tables_streams_the_extraction_pipeline(self):
        from repro.corpus.generator import CorpusConfig, iter_tables

        tables = list(iter_tables(CorpusConfig(seed=3, scale=0.02),
                                  id_prefix="live-"))
        assert tables
        assert all(t.table_id.startswith("live-") for t in tables)
        # Same config without the prefix: identical content, shifted ids.
        plain = list(iter_tables(CorpusConfig(seed=3, scale=0.02)))
        assert [t.table_id for t in tables] == [
            f"live-{t.table_id}" for t in plain
        ]

    def test_iter_tables_matches_generate_corpus(self):
        from repro.corpus.generator import (
            CorpusConfig, generate_corpus, iter_tables,
        )

        config = CorpusConfig(seed=5, scale=0.02)
        streamed = [t.table_id for t in iter_tables(config)]
        generated = generate_corpus(config).corpus.ids()
        assert streamed == generated
