"""Shared fixtures and factories for the test suite."""

from typing import Dict, Sequence, Tuple

import pytest

from repro.core.edges import MappingEdge
from repro.core.model import ColumnFeatures, ColumnMappingProblem
from repro.core.params import DEFAULT_PARAMS, ModelParams
from repro.query.model import Query
from repro.tables.table import WebTable


def make_problem(
    query_text: str,
    table_widths: Sequence[int],
    potentials: Dict[Tuple[int, int], Sequence[float]],
    edges: Sequence[Tuple[Tuple[int, int], Tuple[int, int], float]] = (),
    params: ModelParams = DEFAULT_PARAMS,
    table_relevance: Sequence[float] = (),
) -> ColumnMappingProblem:
    """Build a mapping problem with hand-set potentials.

    ``potentials[(ti, ci)]`` is the dense per-label list (q query labels,
    na, nr).  ``edges`` holds (a, b, nsim) triples; nsim is used in both
    directions.
    """
    query = Query.parse(query_text)
    q = query.q
    tables = []
    for ti, width in enumerate(table_widths):
        rows = [[f"t{ti}r{r}c{c}" for c in range(width)] for r in range(3)]
        header = [f"h{c}" for c in range(width)]
        tables.append(
            WebTable.from_rows(rows, header=header, table_id=f"t{ti}")
        )
    node_potentials = {}
    features = {}
    for ti, width in enumerate(table_widths):
        for ci in range(width):
            theta = list(potentials[(ti, ci)])
            if len(theta) != q + 2:
                raise ValueError("potential vector must have q+2 entries")
            node_potentials[(ti, ci)] = theta
            features[(ti, ci)] = ColumnFeatures(
                segsim=tuple([0.0] * q), cover=tuple([0.0] * q), pmi=tuple([0.0] * q)
            )
    relevance = list(table_relevance) or [0.0] * len(table_widths)
    mapping_edges = [
        MappingEdge(a=a, b=b, sim=nsim, nsim_ab=nsim, nsim_ba=nsim)
        for a, b, nsim in edges
    ]
    return ColumnMappingProblem(
        query=query,
        tables=tables,
        params=params,
        node_potentials=node_potentials,
        features=features,
        table_relevance=relevance,
        edges=mapping_edges,
    )


@pytest.fixture(scope="session")
def small_env():
    """A small shared workload environment (expensive; built once)."""
    from repro.evaluation.harness import build_environment

    return build_environment(scale=0.25, seed=11)
