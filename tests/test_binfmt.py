"""Torture, golden-fixture, and fuzz tests for the v3 binary snapshot format.

The decoder's contract (``repro.index.binfmt``): no corrupt input may
crash it or load silently wrong — every defect raises ``ValueError``
naming ``path:offset``.  These tests earn that claim the hard way: every
possible truncation, every possible single-byte flip, and a catalogue of
surgically crafted structural defects (checksums repaired so the defect
itself — not the checksum — is what the decoder must catch).

The golden-fixture tests freeze the byte layout: the committed
``tests/fixtures/binfmt_v3`` snapshot must match a fresh build of the
same tables byte for byte, so accidental format drift fails here before
it orphans anybody's persisted corpus.
"""

import io
import json
import shutil
import struct
import zlib

import pytest

from repro.cli import main as cli_main
from repro.corpus.generator import iter_synthetic_tables
from repro.index import (
    InvertedIndex,
    LazyShard,
    build_corpus_index,
    load_corpus,
)
from repro.index.binfmt import encode_index, read_index_bin, write_index_bin
from repro.index.builder import read_manifest

from .binfmt_fixture import V2_DIR, V3_DIR, fixture_tables

# The layout constants are *redeclared* here rather than imported: this
# file is the independent witness of the spec in DESIGN.md, so a change to
# the encoder's constants must fail these tests, not get inherited.
MAGIC = b"RPRIDX3\x00"
HEADER = struct.Struct("<8sIIQ")
SECTION = struct.Struct("<4sQQI")
U32 = struct.Struct("<I")
I64 = struct.Struct("<q")
ORDER = [b"STRT", b"DOCS", b"FLDS", b"PSTG", b"DFCT"]
HEADER_BYTES = HEADER.size + SECTION.size * len(ORDER) + U32.size

QUERIES = [
    ["country", "currency"],
    ["country", "capital"],
    ["dog", "breed"],
    ["height", "city"],
    ["academy", "award", "picture"],
]


def small_index():
    index = InvertedIndex()
    index.add_text_document(
        "d1", {"header": "Country Currency", "content": "france euro euro"}
    )
    index.add_text_document(
        "d2", {"header": "Country Capital", "content": "france paris"}
    )
    index.add_text_document(
        "d3",
        {"header": "Dog Breed", "context": "dogs of the world",
         "content": "beagle hound"},
    )
    return index


def rankings(corpus, queries=QUERIES, limit=25):
    """(doc_id, score) lists per query — the bit-identity currency."""
    return [
        [(h.doc_id, h.score) for h in corpus.search(q, limit=limit)]
        for q in queries
    ]


# -- crafting helpers ----------------------------------------------------------


def payloads_of(data):
    """Split a snapshot into its five section payloads, tag-keyed."""
    out = {}
    for i in range(len(ORDER)):
        tag, offset, length, _ = SECTION.unpack_from(
            data, HEADER.size + i * SECTION.size
        )
        out[bytes(tag)] = bytes(data[offset : offset + length])
    return out


def rebuild(payloads):
    """Reassemble a snapshot from (possibly doctored) section payloads.

    Offsets, lengths, section CRCs, total size, and the header CRC are all
    recomputed, so the *structural* defect planted in a payload is the only
    thing left for the decoder to find.
    """
    total = HEADER_BYTES + sum(len(payloads[t]) for t in ORDER)
    head = bytearray(HEADER.pack(MAGIC, 3, len(ORDER), total))
    offset = HEADER_BYTES
    for tag in ORDER:
        head += SECTION.pack(
            tag, offset, len(payloads[tag]), zlib.crc32(payloads[tag])
        )
        offset += len(payloads[tag])
    head += U32.pack(zlib.crc32(bytes(head)))
    return bytes(head) + b"".join(payloads[tag] for tag in ORDER)


def rewrite_header_crc(data):
    """Recompute the header checksum after an in-place header patch."""
    at = HEADER_BYTES - U32.size
    data[at : at + U32.size] = U32.pack(zlib.crc32(bytes(data[:at])))


def expect_offset_error(tmp_path, data, needle):
    """Write ``data``, decode, and demand a ``path:offset`` ValueError."""
    path = tmp_path / "index.bin"
    path.write_bytes(data)
    with pytest.raises(ValueError, match=needle) as excinfo:
        read_index_bin(path)
    message = str(excinfo.value)
    assert message.startswith(f"{path}:"), message
    offset = message[len(f"{path}:"):].split(":", 1)[0]
    assert offset.lstrip("-").isdigit(), message
    return message


# -- exhaustive sweeps ---------------------------------------------------------


class TestExhaustiveCorruption:
    def test_every_truncation_rejected(self, tmp_path):
        data = encode_index(small_index())
        path = tmp_path / "index.bin"
        for cut in range(len(data)):
            path.write_bytes(data[:cut])
            with pytest.raises(ValueError) as excinfo:
                read_index_bin(path)
            assert str(excinfo.value).startswith(f"{path}:"), (
                f"truncation at {cut}: {excinfo.value}"
            )

    def test_every_single_byte_flip_rejected(self, tmp_path):
        # Every byte of the file is covered by a checksum (header+table by
        # the header CRC, payloads by their section CRCs), so each of the
        # len(data) corrupt variants must fail even WITHOUT the manifest's
        # whole-file checksum.
        data = encode_index(small_index())
        path = tmp_path / "index.bin"
        for at in range(len(data)):
            corrupt = bytearray(data)
            corrupt[at] ^= 0xFF
            path.write_bytes(bytes(corrupt))
            with pytest.raises(ValueError) as excinfo:
                read_index_bin(path)
            assert str(excinfo.value).startswith(f"{path}:"), (
                f"flip at {at}: {excinfo.value}"
            )

    def test_manifest_checksum_catches_flips_before_decode(self, tmp_path):
        path = tmp_path / "index.bin"
        nbytes, crc = write_index_bin(path, small_index())
        data = bytearray(path.read_bytes())
        data[nbytes // 2] ^= 0x01
        path.write_bytes(bytes(data))
        with pytest.raises(ValueError, match="does not match the manifest"):
            read_index_bin(path, expected_bytes=nbytes, expected_crc32=crc)


# -- crafted structural defects ------------------------------------------------


class TestHeaderDefects:
    def test_empty_file(self, tmp_path):
        expect_offset_error(tmp_path, b"", "empty snapshot file")

    def test_manifest_size_mismatch(self, tmp_path):
        path = tmp_path / "index.bin"
        nbytes, crc = write_index_bin(path, small_index())
        with pytest.raises(ValueError, match="manifest records"):
            read_index_bin(path, expected_bytes=nbytes + 1, expected_crc32=crc)

    def test_bad_magic(self, tmp_path):
        data = bytearray(encode_index(small_index()))
        data[0:8] = b"NOTMAGIC"
        rewrite_header_crc(data)
        expect_offset_error(tmp_path, bytes(data), "bad magic")

    def test_bad_version(self, tmp_path):
        data = bytearray(encode_index(small_index()))
        struct.pack_into("<I", data, 8, 99)
        rewrite_header_crc(data)
        expect_offset_error(
            tmp_path, bytes(data), "unsupported binary version 99"
        )

    def test_wrong_section_count(self, tmp_path):
        data = bytearray(encode_index(small_index()))
        struct.pack_into("<I", data, 12, 4)
        rewrite_header_crc(data)
        expect_offset_error(tmp_path, bytes(data), "records 4 sections")

    def test_header_size_field_mismatch(self, tmp_path):
        data = bytearray(encode_index(small_index()))
        struct.pack_into("<Q", data, 16, len(data) + 8)
        rewrite_header_crc(data)
        expect_offset_error(tmp_path, bytes(data), "header records")

    def test_header_checksum_mismatch(self, tmp_path):
        data = bytearray(encode_index(small_index()))
        # A section-table byte: only the header CRC guards those, and the
        # CRC check runs before any per-section validation.
        data[HEADER.size + 6] ^= 0x01
        expect_offset_error(tmp_path, bytes(data), "header checksum mismatch")


class TestSectionTableDefects:
    def test_sections_out_of_order(self, tmp_path):
        data = bytearray(encode_index(small_index()))
        a = HEADER.size + 1 * SECTION.size
        b = HEADER.size + 2 * SECTION.size
        entry_a = bytes(data[a : a + SECTION.size])
        data[a : a + SECTION.size] = data[b : b + SECTION.size]
        data[b : b + SECTION.size] = entry_a
        rewrite_header_crc(data)
        expect_offset_error(tmp_path, bytes(data), "expected, found")

    def test_non_contiguous_sections(self, tmp_path):
        data = bytearray(encode_index(small_index()))
        at = HEADER.size + 1 * SECTION.size
        tag, offset, length, crc = SECTION.unpack_from(data, at)
        SECTION.pack_into(data, at, tag, offset + 1, length, crc)
        rewrite_header_crc(data)
        expect_offset_error(tmp_path, bytes(data), "starts at")

    def test_section_overruns_file(self, tmp_path):
        data = bytearray(encode_index(small_index()))
        at = HEADER.size + 4 * SECTION.size
        tag, offset, length, crc = SECTION.unpack_from(data, at)
        SECTION.pack_into(data, at, tag, offset, length + 1000, crc)
        rewrite_header_crc(data)
        expect_offset_error(tmp_path, bytes(data), "overruns the file")

    def test_section_checksum_mismatch(self, tmp_path):
        data = bytearray(encode_index(small_index()))
        data[-1] ^= 0xFF  # last payload byte; header crc is unaffected
        expect_offset_error(tmp_path, bytes(data), "checksum mismatch")

    def test_trailing_bytes_after_last_section(self, tmp_path):
        data = bytearray(encode_index(small_index()) + b"\x00" * 4)
        struct.pack_into("<Q", data, 16, len(data))
        rewrite_header_crc(data)
        expect_offset_error(
            tmp_path, bytes(data), "trailing bytes after the last section"
        )


class TestStringTableDefects:
    def test_over_length_string_entry(self, tmp_path):
        payloads = payloads_of(encode_index(small_index()))
        strt = bytearray(payloads[b"STRT"])
        # entry 0's length prefix sits right after the 8-byte count.
        struct.pack_into("<q", strt, 8, 10**9)
        payloads[b"STRT"] = bytes(strt)
        expect_offset_error(
            tmp_path, rebuild(payloads), "truncated string-table entry"
        )

    def test_negative_string_length(self, tmp_path):
        payloads = payloads_of(encode_index(small_index()))
        strt = bytearray(payloads[b"STRT"])
        struct.pack_into("<q", strt, 8, -5)
        payloads[b"STRT"] = bytes(strt)
        expect_offset_error(
            tmp_path, rebuild(payloads), "negative string-table entry length"
        )

    def test_invalid_utf8_entry(self, tmp_path):
        payloads = payloads_of(encode_index(small_index()))
        strt = bytearray(payloads[b"STRT"])
        length = I64.unpack_from(strt, 8)[0]
        strt[16 : 16 + length] = b"\xff" * length
        payloads[b"STRT"] = bytes(strt)
        expect_offset_error(tmp_path, rebuild(payloads), "not valid UTF-8")

    def test_trailing_bytes_inside_section(self, tmp_path):
        payloads = payloads_of(encode_index(small_index()))
        payloads[b"STRT"] += b"\x00" * 8
        expect_offset_error(
            tmp_path, rebuild(payloads), "trailing bytes in string table"
        )


class TestDocsDefects:
    def test_ref_out_of_range(self, tmp_path):
        payloads = payloads_of(encode_index(small_index()))
        docs = bytearray(payloads[b"DOCS"])
        struct.pack_into("<q", docs, 8, 10**6)
        payloads[b"DOCS"] = bytes(docs)
        expect_offset_error(tmp_path, rebuild(payloads), "out of range")

    def test_duplicate_document_id(self, tmp_path):
        payloads = payloads_of(encode_index(small_index()))
        docs = bytearray(payloads[b"DOCS"])
        docs[16:24] = docs[8:16]  # doc 1's ref := doc 0's ref
        payloads[b"DOCS"] = bytes(docs)
        expect_offset_error(
            tmp_path, rebuild(payloads), "duplicate document id"
        )

    def test_negative_document_count(self, tmp_path):
        payloads = payloads_of(encode_index(small_index()))
        docs = bytearray(payloads[b"DOCS"])
        struct.pack_into("<q", docs, 0, -1)
        payloads[b"DOCS"] = bytes(docs)
        expect_offset_error(
            tmp_path, rebuild(payloads), "negative document count"
        )


def one_term_index():
    """One doc, one field, one term — every PSTG byte at a known offset."""
    index = InvertedIndex(boosts={"content": 1.0})
    index.add_document("only-doc", {"content": ["solo"]})
    return index


class TestFieldAndPostingDefects:
    # PSTG layout of one_term_index():
    #   [0]  nfields=1   [8] field ref   [16] nterms=1   [24] term ref
    #   [32] n=1         [40] doc_num    [48] tf         [56] weight
    def test_duplicate_field(self, tmp_path):
        payloads = payloads_of(encode_index(small_index()))
        flds = bytearray(payloads[b"FLDS"])
        count = I64.unpack_from(flds, 0)[0]
        assert count >= 2
        # Field rows are variable-length; duplicating is easiest done by
        # pointing row 1's name ref at row 0's.  Row 0 starts at 8; its
        # layout is ref(8) boost(8) sparse(8) + arrays.  Recover row 1's
        # start by walking row 0.
        num_docs = I64.unpack_from(payloads[b"DOCS"], 0)[0]
        sparse0 = I64.unpack_from(flds, 8 + 16)[0]
        row1 = 8 + 24 + 16 * sparse0 + 8 * num_docs
        flds[row1 : row1 + 8] = flds[8:16]
        payloads[b"FLDS"] = bytes(flds)
        expect_offset_error(tmp_path, rebuild(payloads), "duplicate field")

    def test_length_doc_number_out_of_range(self, tmp_path):
        payloads = payloads_of(encode_index(one_term_index()))
        flds = bytearray(payloads[b"FLDS"])
        # one field, sparse=1: length doc-number array starts at 8+24.
        struct.pack_into("<q", flds, 32, 7)
        payloads[b"FLDS"] = bytes(flds)
        expect_offset_error(
            tmp_path, rebuild(payloads), "doc number .*out of range"
        )

    def test_negative_token_length(self, tmp_path):
        payloads = payloads_of(encode_index(one_term_index()))
        flds = bytearray(payloads[b"FLDS"])
        struct.pack_into("<q", flds, 40, -3)  # the length-values array
        payloads[b"FLDS"] = bytes(flds)
        expect_offset_error(
            tmp_path, rebuild(payloads), "negative token length"
        )

    def test_posting_field_count_mismatch(self, tmp_path):
        payloads = payloads_of(encode_index(one_term_index()))
        pstg = bytearray(payloads[b"PSTG"])
        struct.pack_into("<q", pstg, 0, 2)
        payloads[b"PSTG"] = bytes(pstg)
        expect_offset_error(
            tmp_path, rebuild(payloads), "posting section lists 2 fields"
        )

    def test_posting_field_order_mismatch(self, tmp_path):
        payloads = payloads_of(encode_index(one_term_index()))
        pstg = bytearray(payloads[b"PSTG"])
        term_ref = bytes(pstg[24:32])
        pstg[8:16] = term_ref  # field name ref := the term's ref
        payloads[b"PSTG"] = bytes(pstg)
        expect_offset_error(
            tmp_path, rebuild(payloads), "does not follow the field table"
        )

    def test_empty_posting_list(self, tmp_path):
        payloads = payloads_of(encode_index(one_term_index()))
        pstg = bytearray(payloads[b"PSTG"])
        struct.pack_into("<q", pstg, 32, 0)
        payloads[b"PSTG"] = bytes(pstg[:40])  # drop the 24 payload bytes
        expect_offset_error(
            tmp_path, rebuild(payloads), "empty posting list"
        )

    def test_negative_posting_length(self, tmp_path):
        payloads = payloads_of(encode_index(one_term_index()))
        pstg = bytearray(payloads[b"PSTG"])
        struct.pack_into("<q", pstg, 32, -4)
        payloads[b"PSTG"] = bytes(pstg)
        expect_offset_error(
            tmp_path, rebuild(payloads), "negative posting length"
        )

    def test_posting_doc_number_out_of_range(self, tmp_path):
        payloads = payloads_of(encode_index(one_term_index()))
        pstg = bytearray(payloads[b"PSTG"])
        struct.pack_into("<q", pstg, 40, 9)
        payloads[b"PSTG"] = bytes(pstg)
        expect_offset_error(
            tmp_path, rebuild(payloads), "doc .*number out of range"
        )

    def test_non_positive_term_frequency(self, tmp_path):
        payloads = payloads_of(encode_index(one_term_index()))
        pstg = bytearray(payloads[b"PSTG"])
        struct.pack_into("<q", pstg, 48, 0)
        payloads[b"PSTG"] = bytes(pstg)
        expect_offset_error(
            tmp_path, rebuild(payloads), "non-positive term frequency"
        )

    def test_duplicate_posting_term(self, tmp_path):
        payloads = payloads_of(encode_index(one_term_index()))
        pstg = bytearray(payloads[b"PSTG"])
        term_block = bytes(pstg[24:64])
        struct.pack_into("<q", pstg, 16, 2)
        payloads[b"PSTG"] = bytes(pstg) + term_block
        expect_offset_error(
            tmp_path, rebuild(payloads), "duplicate posting term"
        )


class TestDfDefects:
    # DFCT layout of one_term_index(): [0] count=1  [8] term ref  [16] df
    def test_zero_document_frequency(self, tmp_path):
        payloads = payloads_of(encode_index(one_term_index()))
        dfct = bytearray(payloads[b"DFCT"])
        struct.pack_into("<q", dfct, 16, 0)
        payloads[b"DFCT"] = bytes(dfct)
        expect_offset_error(
            tmp_path, rebuild(payloads), "zero document frequency"
        )

    def test_duplicate_df_entry(self, tmp_path):
        payloads = payloads_of(encode_index(one_term_index()))
        dfct = bytearray(payloads[b"DFCT"])
        entry = bytes(dfct[8:24])
        struct.pack_into("<q", dfct, 0, 2)
        payloads[b"DFCT"] = bytes(dfct) + entry
        expect_offset_error(
            tmp_path, rebuild(payloads), "duplicate df entry"
        )


class TestEncoderGuards:
    def test_encoder_rejects_removed_documents(self):
        index = InvertedIndex()
        index.add_document("a", {"content": ["x", "y"]})
        index.add_document("b", {"content": ["x"]})
        index.remove_document("a", {"content": ["x", "y"]})
        with pytest.raises(ValueError, match="removed document"):
            encode_index(index)


# -- round trips and bit-identity ----------------------------------------------


class TestRoundTrip:
    def test_round_trip_restores_every_structure(self, tmp_path):
        index = small_index()
        path = tmp_path / "index.bin"
        nbytes, crc = write_index_bin(path, index)
        loaded = read_index_bin(path, expected_bytes=nbytes,
                                expected_crc32=crc)
        assert loaded._doc_names == index._doc_names
        assert loaded._doc_nums == index._doc_nums
        assert loaded._lengths == index._lengths
        assert loaded._norms == index._norms
        assert loaded._df == index._df
        assert loaded.boosts == index.boosts
        for field, postings in index._postings.items():
            got = loaded._postings[field]
            assert list(got) == list(postings)
            for term, plist in postings.items():
                assert got[term].doc_nums == plist.doc_nums
                assert got[term].tfs == plist.tfs
                assert got[term].weights == plist.weights

    def test_empty_index_round_trips(self, tmp_path):
        path = tmp_path / "index.bin"
        write_index_bin(path, InvertedIndex())
        loaded = read_index_bin(path)
        assert loaded.num_docs == 0
        assert loaded.boosts == {"header": 2.0, "context": 1.5,
                                 "content": 1.0}
        assert loaded.search(["anything"]) == []

    def test_field_with_no_postings_round_trips(self, tmp_path):
        # A boost field no document used serializes as a zero-sparse,
        # zero-term row and must come back intact.
        index = InvertedIndex(boosts={"header": 2.0, "content": 1.0})
        index.add_text_document("d1", {"content": "france euro"})
        path = tmp_path / "index.bin"
        write_index_bin(path, index)
        loaded = read_index_bin(path)
        assert loaded.boosts == {"header": 2.0, "content": 1.0}
        assert loaded._lengths["header"] == {}
        assert encode_index(loaded) == encode_index(index)

    def test_re_encode_is_byte_identical(self, tmp_path):
        path = tmp_path / "index.bin"
        write_index_bin(path, small_index())
        data = path.read_bytes()
        assert encode_index(read_index_bin(path)) == data

    def test_search_results_bit_identical(self, tmp_path):
        index = small_index()
        path = tmp_path / "index.bin"
        write_index_bin(path, index)
        loaded = read_index_bin(path)
        for terms in (["country"], ["france", "euro"], ["dog", "beagle"]):
            assert [
                (h.doc_id, h.score) for h in loaded.search(terms)
            ] == [(h.doc_id, h.score) for h in index.search(terms)]


class TestLazyShard:
    def make_corpus(self, tmp_path, num_shards=2):
        tables = list(iter_synthetic_tables(60, seed=11))
        build_corpus_index(tables, num_shards=num_shards,
                           save=tmp_path / "c")
        return tables, tmp_path / "c"

    def test_open_is_lazy_until_first_probe(self, tmp_path):
        tables, path = self.make_corpus(tmp_path)
        corpus = load_corpus(path, mutable=False)
        assert all(isinstance(s, LazyShard) for s in corpus.shards)
        assert not any(s.materialized for s in corpus.shards)
        # The cheap surfaces answer from the manifest alone.
        assert corpus.num_tables == len(tables)
        assert corpus.boosts == {"header": 2.0, "context": 1.5,
                                 "content": 1.0}
        assert not any(s.materialized for s in corpus.shards)
        corpus.search(["country"])
        assert all(s.materialized for s in corpus.shards)

    def test_routed_table_access_materializes_one_shard(self, tmp_path):
        tables, path = self.make_corpus(tmp_path)
        corpus = load_corpus(path, mutable=False)
        corpus.get_table(tables[0].table_id)
        assert sum(1 for s in corpus.shards if s.materialized) == 1

    def test_mutable_open_stays_lazy(self, tmp_path):
        _, path = self.make_corpus(tmp_path)
        corpus = load_corpus(path)  # JournaledCorpus wrapper
        assert not any(s.materialized for s in corpus.base.shards)

    def test_corruption_surfaces_at_first_probe_not_open(self, tmp_path):
        tables, path = self.make_corpus(tmp_path)
        victim = path / "shard-0000" / "index.bin"
        victim.write_bytes(b"garbage")
        corpus = load_corpus(path, mutable=False)  # opens fine: lazy
        with pytest.raises(ValueError, match="index.bin"):
            corpus.search(["country"])

    def test_manifest_count_mismatch_rejected(self, tmp_path):
        _, path = self.make_corpus(tmp_path)
        manifest_path = path / "manifest.json"
        manifest = json.loads(manifest_path.read_text())
        manifest["shards"][0]["num_tables"] += 1
        manifest["num_tables"] += 1
        manifest_path.write_text(json.dumps(manifest))
        corpus = load_corpus(path, mutable=False)
        with pytest.raises(ValueError, match="manifest records"):
            corpus.search(["country"])

    def test_manifest_boost_mismatch_rejected(self, tmp_path):
        _, path = self.make_corpus(tmp_path)
        manifest_path = path / "manifest.json"
        manifest = json.loads(manifest_path.read_text())
        manifest["boosts"]["header"] = 9.0
        manifest_path.write_text(json.dumps(manifest))
        corpus = load_corpus(path, mutable=False)
        with pytest.raises(ValueError, match="boosts"):
            corpus.search(["country"])

    def test_store_index_count_mismatch_rejected(self, tmp_path):
        tables, path = self.make_corpus(tmp_path)
        extra = tables[0].to_dict()
        extra["table_id"] = "smuggled-row"
        with (path / "shard-0000" / "tables.jsonl").open("a") as fh:
            fh.write(json.dumps(extra) + "\n")
        corpus = load_corpus(path, mutable=False)
        with pytest.raises(ValueError, match="table store holds"):
            corpus.search(["country"])


# -- golden fixtures -----------------------------------------------------------


class TestGoldenFixture:
    def test_fresh_build_matches_committed_bytes(self, tmp_path):
        build_corpus_index(fixture_tables(), num_shards=2,
                           save=tmp_path / "c", index_format="bin")
        for shard in ("shard-0000", "shard-0001"):
            fresh = (tmp_path / "c" / shard / "index.bin").read_bytes()
            golden = (V3_DIR / shard / "index.bin").read_bytes()
            assert fresh == golden, (
                f"{shard}: v3 byte layout drifted from the committed "
                "fixture — if the format change is intentional, bump the "
                "version and regenerate via tests/binfmt_fixture.py"
            )

    def test_loaded_fixture_re_encodes_identically(self):
        manifest = read_manifest(V3_DIR)
        for entry in manifest["shards"]:
            path = V3_DIR / entry["dir"] / "index.bin"
            golden = path.read_bytes()
            loaded = read_index_bin(
                path, expected_bytes=entry["index_bytes"],
                expected_crc32=entry["index_crc32"],
            )
            assert encode_index(loaded) == golden

    def test_fixture_loads_and_ranks_like_fresh_build(self):
        fresh = build_corpus_index(fixture_tables(), num_shards=2)
        corpus = load_corpus(V3_DIR, mutable=False)
        assert rankings(corpus) == rankings(fresh)

    def test_fixture_manifest_is_version_3(self):
        manifest = read_manifest(V3_DIR)
        assert manifest["version"] == 3
        for entry in manifest["shards"]:
            assert isinstance(entry["index_bytes"], int)
            assert isinstance(entry["index_crc32"], int)


class TestCrossVersion:
    def test_v2_fixture_reports_version_2_in_info(self):
        out = io.StringIO()
        assert cli_main(["index", "info", str(V2_DIR)], out=out) == 0
        lines = out.getvalue().splitlines()
        assert "version: 2" in lines
        assert "format: repro-index" in lines

    def test_v2_fixture_loads_and_ranks_identically(self):
        fresh = build_corpus_index(fixture_tables(), num_shards=2)
        corpus = load_corpus(V2_DIR, mutable=False)
        assert rankings(corpus) == rankings(fresh)

    def test_v2_upgrades_to_v3_on_compact(self, tmp_path):
        workdir = tmp_path / "v2copy"
        shutil.copytree(V2_DIR, workdir)
        fresh = build_corpus_index(fixture_tables(), num_shards=2)
        with load_corpus(workdir) as corpus:
            before = rankings(corpus)
            assert corpus.compact() == 0  # nothing to fold, still rewrites
        manifest = read_manifest(workdir)
        assert manifest["version"] == 3
        for entry in manifest["shards"]:
            shard_dir = workdir / entry["dir"]
            assert (shard_dir / "index.bin").is_file()
            assert not (shard_dir / "index.json").exists()
        reloaded = load_corpus(workdir, mutable=False)
        assert rankings(reloaded) == before == rankings(fresh)

    def test_v2_stays_v2_when_asked(self, tmp_path):
        workdir = tmp_path / "v2copy"
        shutil.copytree(V2_DIR, workdir)
        with load_corpus(workdir) as corpus:
            corpus.compact(index_format="json")
        assert read_manifest(workdir)["version"] == 2


# -- seeded round-trip fuzz ----------------------------------------------------


FUZZ_QUERIES = QUERIES + [["president"], ["explorer", "discovery"]]


class TestFuzzRoundTrip:
    @pytest.mark.parametrize("seed", [101, 202, 303])
    @pytest.mark.parametrize("num_shards", [None, 2, 4])
    def test_v3_and_v2_rank_bit_identically_to_memory(
        self, tmp_path, seed, num_shards
    ):
        tables = list(iter_synthetic_tables(90, seed=seed))
        mem = build_corpus_index(tables, num_shards=num_shards)
        want = rankings(mem, FUZZ_QUERIES)
        for fmt in ("bin", "json"):
            save = tmp_path / f"c-{fmt}"
            build_corpus_index(tables, num_shards=num_shards, save=save,
                               index_format=fmt)
            loaded = load_corpus(save, mutable=False)
            assert rankings(loaded, FUZZ_QUERIES) == want, (
                f"seed={seed} shards={num_shards} fmt={fmt}"
            )

    @pytest.mark.parametrize("seed", [11, 22])
    def test_journal_churn_then_v3_round_trip(self, tmp_path, seed):
        tables = list(iter_synthetic_tables(80, seed=seed))
        extra = list(iter_synthetic_tables(20, seed=seed + 1,
                                           id_prefix="churn-"))
        save = tmp_path / "c"
        build_corpus_index(tables, num_shards=2, save=save)
        with load_corpus(save) as corpus:
            corpus.add_tables(extra)
            doomed = [t.table_id for t in tables[::7]]
            corpus.delete_tables(doomed)
            live = rankings(corpus, FUZZ_QUERIES)
            assert corpus.compact() > 0
        # The compacted v3 directory must reproduce the live rankings,
        # and so must the equivalent from-scratch in-memory build.
        reloaded = load_corpus(save, mutable=False)
        assert rankings(reloaded, FUZZ_QUERIES) == live
        survivors = [t for t in tables if t.table_id not in set(doomed)]
        rebuilt = build_corpus_index(survivors + extra, num_shards=2)
        assert rankings(rebuilt, FUZZ_QUERIES) == live

    def test_streamed_build_matches_memory_build(self, tmp_path):
        mem = build_corpus_index(list(iter_synthetic_tables(120, seed=5)),
                                 num_shards=3)
        streamed = build_corpus_index(
            iter_synthetic_tables(120, seed=5), num_shards=3,
            save=tmp_path / "c", stream=True,
        )
        assert rankings(streamed, FUZZ_QUERIES) == rankings(
            mem, FUZZ_QUERIES
        )
