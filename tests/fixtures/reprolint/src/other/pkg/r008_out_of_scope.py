"""R008 negative: absorbing a failure outside the recovery packages."""


def poll(fn):
    try:
        return fn()
    except Exception:
        return None
