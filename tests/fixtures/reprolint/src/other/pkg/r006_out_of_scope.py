"""R006 negative: swallowing TimeoutError outside repro.exec is not flagged."""


def poll(fn):
    try:
        return fn()
    except TimeoutError:
        return None
