"""R003 negative: same code as the positive, but outside scoring packages."""


def set_sum(weights, items):
    return sum(weights[t] for t in set(items))  # not in a scoring package
