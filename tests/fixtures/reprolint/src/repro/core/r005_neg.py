"""R005 negative: consistent lock discipline, including helper methods."""

import threading


class Counters:
    def __init__(self):
        self._lock = threading.Lock()
        self._total = 0  # construction is single-threaded: exempt
        self._unguarded = 0

    def record(self, n: int) -> None:
        with self._lock:
            self._total += n
            self._flush()

    def reset(self) -> None:
        with self._lock:
            self._total = 0

    def _flush(self) -> None:
        # Only ever called with the lock held (from record): writes are fine.
        self._total += 1

    def bump(self) -> None:
        self._unguarded += 1  # never lock-guarded anywhere: not R005's business
