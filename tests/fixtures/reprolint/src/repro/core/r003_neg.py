"""R003 negative: ordered, counted, or non-accumulating set use."""


def sorted_sum(weights, a, b):
    return sum(weights[t] for t in sorted(set(a) & set(b)))


def list_sum(weights, items):
    return sum(weights[t] for t in items)


def cardinality(a, b):
    return len(set(a) & set(b))


def ordered_accumulate(weights, items):
    total = 0.0
    for t in sorted(set(items)):  # sorted() restores a canonical order
        total += weights[t]
    return total


def membership(items, probe):
    wanted = set(items)
    return [p for p in probe if p in wanted]
