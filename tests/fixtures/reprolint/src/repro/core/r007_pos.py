"""R007 positive: mutable default arguments."""

from collections import Counter


def collect(item, bucket=[]):  # line 5: flagged
    bucket.append(item)
    return bucket


def tally(items, counts=Counter()):  # line 10: flagged
    counts.update(items)
    return counts


def keyed(value, *, registry={}):  # line 15: flagged (kw-only default)
    registry[value] = True
    return registry


pick = lambda xs, seen=set(): [x for x in xs if x not in seen]  # line 20: flagged  # noqa: E731
