"""R003 positive: float accumulation over unordered iteration."""


def set_sum(weights, a, b):
    common = set(a) & set(b)
    return sum(weights[t] for t in common)  # line 6: flagged (set-typed local)


def inline_set_sum(weights, items):
    return sum(weights[t] for t in set(items))  # line 10: flagged


def dict_view_sum(weights: dict) -> float:
    return sum(w * w for w in weights.values())  # line 14: flagged


def loop_accumulate(weights, items):
    total = 0.0
    for t in set(items):  # line 19: flagged (AugAssign in body)
        total += weights[t]
    return total
