"""R004 negative: bounded caches, non-cache dicts, per-call locals."""

from typing import Dict

from repro.core.features import BoundedCache

_CONFIG: Dict[str, float] = {}  # not cache-named


class Scorer:
    def __init__(self):
        self._idf_cache = BoundedCache(1024)  # bounded by construction
        self._weights = {}  # plain state, not a cache

    def score(self, terms):
        idf_cache: Dict[str, float] = {}  # per-call local: dies with the call
        return sum(idf_cache.get(t, 0.0) for t in terms)
