"""R005 positive: lock-guarded attribute written outside the lock."""

import threading


class Counters:
    def __init__(self):
        self._lock = threading.Lock()
        self._total = 0
        self._pending = []

    def record(self, n: int) -> None:
        with self._lock:
            self._total += n
            self._pending.append(n)

    def reset(self) -> None:
        self._total = 0  # line 18: flagged (guarded elsewhere, no lock here)
        self._pending.clear()  # line 19: flagged (mutating call)
