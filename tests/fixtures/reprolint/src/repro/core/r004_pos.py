"""R004 positive: unbounded dict-shaped caches."""

from collections import OrderedDict, defaultdict
from typing import Dict

_SCORE_CACHE: Dict[str, float] = {}  # line 6: flagged (module level)


class Scorer:
    shared_memo = {}  # line 10: flagged (class level)

    def __init__(self):
        self._idf_cache = {}  # line 13: flagged
        self._df_cache: Dict[str, int] = defaultdict(int)  # line 14: flagged
        self._recent_cache = OrderedDict()  # line 15: flagged
