"""R002 positive: module-level / unseeded random use."""

import random
from random import shuffle  # line 4: flagged import

JITTER = random.random()  # line 6: flagged


def sample(items):
    random.shuffle(items)  # line 10: flagged
    return items[: random.randint(1, 3)]  # line 11: flagged
