"""R007 negative: None sentinels and immutable defaults."""

from typing import Optional, Tuple


def collect(item, bucket: Optional[list] = None):
    if bucket is None:
        bucket = []
    bucket.append(item)
    return bucket


def windowed(items, bounds: Tuple[int, int] = (0, 10), label: str = "all"):
    lo, hi = bounds
    return [label, items[lo:hi]]
