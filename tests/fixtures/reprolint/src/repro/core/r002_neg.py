"""R002 negative: explicit, seeded rng instances passed around."""

import random
from random import Random


def make_rng(seed: int) -> Random:
    return random.Random(seed)


def sample(items, rng: Random):
    rng.shuffle(items)
    return items[: rng.randint(1, 3)]
