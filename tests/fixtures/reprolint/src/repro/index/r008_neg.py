"""R008 negative: recovery paths that record, re-raise, or convert."""


def probe(tracker, si, shard):
    try:
        result = shard.search()
    except Exception as exc:
        tracker.record_failure(si, exc)  # recorded to the health seam
        return None
    tracker.record_success(si)
    return result


def verify(path, issues):
    def record_issue(kind, message):
        issues.append((kind, message))

    try:
        return path.read_bytes()
    except OSError as exc:
        record_issue("missing", str(exc))  # recorded as a scrub finding
        return None


def strict_load(fn):
    try:
        return fn()
    except ValueError as exc:
        raise RuntimeError("corrupt shard") from exc  # converted, not lost


def refuse(counters, exc):
    try:
        raise exc
    except KeyError:
        counters.reject("invalid")  # counted refusal
        return None
