"""R009 negative: only spawn-safe primitives cross the pool boundary."""

from concurrent.futures import ProcessPoolExecutor


def _worker_init(corpus_dir, rules):
    pass


def _worker_probe(ordinal, terms):
    return (ordinal, sorted(terms))


class GoodPool:
    def __init__(self, corpus_dir, rules):
        self._dir = corpus_dir
        # Path + tuple of frozen value objects: rebuildable in the child.
        self._executor = ProcessPoolExecutor(
            max_workers=2,
            initializer=_worker_init,
            initargs=(self._dir, tuple(rules)),
        )

    def probe(self, ordinal, terms):
        return self._executor.submit(_worker_probe, ordinal, list(terms))
