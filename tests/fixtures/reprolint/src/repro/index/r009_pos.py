"""R009 positive: fork-unsafe state shipped across the pool boundary."""

import threading
from concurrent.futures import ProcessPoolExecutor

_LOCK = threading.Lock()


class BadPool:
    def __init__(self, corpus_dir):
        self._dir = corpus_dir
        self._executor = ProcessPoolExecutor(
            max_workers=2,
            initializer=self._setup,        # line 14: bound method
            initargs=(self, _LOCK),         # line 15: self + lock handle
        )

    def _setup(self):
        pass

    def probe(self, ordinal):
        return self._executor.submit(lambda: ordinal)  # line 22: lambda

    def gather(self, handle):
        return self._executor.submit(self._merge, handle)  # line 25: bound

    def _merge(self, handle):
        return handle
