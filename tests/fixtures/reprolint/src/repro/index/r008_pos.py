"""R008 positive: recovery paths absorbing failures without recording."""


def load_shard(path, shards):
    try:
        return shards[path]
    except KeyError:  # line 7: flagged (absorbed, nothing recorded)
        return None


def scatter(jobs):
    results = []
    for job in jobs:
        try:
            results.append(job())
        except Exception:  # line 16: flagged (shard failure vanishes)
            continue
    return results
