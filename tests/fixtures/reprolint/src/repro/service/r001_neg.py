"""R001 negative: timing through the sanctioned seam only."""

import time

from repro.exec.context import wall_clock


def served_in() -> float:
    start = wall_clock()
    return wall_clock() - start


def nap() -> None:
    time.sleep(0.01)  # sleeping is not reading the clock


def with_injected_clock(clock) -> float:
    return clock()
