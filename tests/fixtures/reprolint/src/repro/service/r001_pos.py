"""R001 positive: wall-clock reads outside the clock seam."""

import time
from datetime import datetime
from time import perf_counter  # line 5: flagged import


def served_in() -> float:
    start = time.perf_counter()  # line 9: flagged
    return time.time() - start  # line 10: flagged


def stamp() -> str:
    return datetime.now().isoformat()  # line 14: flagged


def tick() -> float:
    return perf_counter()  # flagged at the import, not here
