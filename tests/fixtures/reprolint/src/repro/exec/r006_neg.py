"""R006 negative: signals propagate; unrelated errors may be handled."""


class DeadlineExceeded(TimeoutError):
    pass


def run_stage(stage):
    try:
        return stage()
    except DeadlineExceeded:
        raise  # re-raised: the signal still propagates


def run_plan(plan, span):
    try:
        return plan()
    except TimeoutError as exc:
        span.note(exc)
        raise DeadlineExceeded(str(exc)) from exc  # converted, not swallowed
    except ValueError:
        return None  # not a cancellation signal


def out_of_scope_helper(fn):
    try:
        return fn()
    except KeyError:
        return None
