"""R006 positive: repro.exec code swallowing cancellation signals."""


class DeadlineExceeded(TimeoutError):
    pass


def run_stage(stage):
    try:
        return stage()
    except DeadlineExceeded:  # line 10: flagged (no raise in handler)
        return None


def run_plan(plan):
    try:
        return plan()
    except TimeoutError:  # line 17: flagged
        pass
    except Exception:  # line 19: flagged (broad catch also swallows signals)
        return None
