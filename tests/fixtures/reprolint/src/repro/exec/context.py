"""R001 negative: the clock seam module itself may read the clock."""

import time


def wall_clock() -> float:
    return time.perf_counter()
