"""R000: a disable without a reason is itself an error (and suppresses nothing)."""


def collect(item, bucket=[]):  # reprolint: disable=R007
    bucket.append(item)
    return bucket
