"""Clean: a reasoned file-wide disable covers every R007 in the file."""

# reprolint: disable-file=R007 -- fixture: demonstrates a reasoned file-wide suppression


def collect(item, bucket=[]):
    bucket.append(item)
    return bucket


def tally(item, counts={}):
    counts[item] = counts.get(item, 0) + 1
    return counts
