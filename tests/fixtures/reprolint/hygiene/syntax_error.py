"""R000: an unparsable file is reported, not skipped."""

def broken(:
