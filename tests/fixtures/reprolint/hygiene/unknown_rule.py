"""R000: disabling an unknown rule id is an error."""

X = 1  # reprolint: disable=R999 -- no such rule
