"""R000: a reprolint comment that is not valid disable grammar is an error."""

X = 1  # reprolint: R007 is fine here
