"""Clean: a reasoned line disable suppresses exactly its line."""

_SINK = []


def collect(item, bucket=_SINK.append):  # callables are fine as defaults
    bucket(item)


def merge(item, into={}):  # reprolint: disable=R007 -- fixture: demonstrates a reasoned suppression
    into[item] = True
    return into
