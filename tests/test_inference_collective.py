"""Collective inference: table-centric, alpha-expansion, BP, TRW-S."""


import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.inference import (
    ALGORITHMS,
    alpha_expansion_inference,
    belief_propagation_inference,
    exhaustive_inference,
    independent_inference,
    table_centric_inference,
    trws_inference,
)
from repro.inference.repair import repair_assignment, table_violates_constraints

from .conftest import make_problem

COLLECTIVE = [
    table_centric_inference,
    alpha_expansion_inference,
    belief_propagation_inference,
    trws_inference,
]


def rescue_problem(nsim=0.8):
    """A headerless table (t1) rescued by a confident neighbor (t0).

    t0 maps clearly; t1 has flat potentials (weak nr pull) and strong
    content edges to t0's columns.
    """
    return make_problem(
        "a | b",
        [2, 2],
        {
            (0, 0): [3.0, -0.4, 0.0, 0.1],
            (0, 1): [-0.4, 3.0, 0.0, 0.1],
            (1, 0): [-0.4, -0.4, 0.0, 0.3],
            (1, 1): [-0.4, -0.4, 0.0, 0.3],
        },
        edges=[((0, 0), (1, 0), nsim), ((0, 1), (1, 1), nsim)],
    )


class TestTableCentric:
    def test_edge_rescue(self):
        problem = rescue_problem()
        base = independent_inference(problem)
        assert not base.is_relevant(1)  # headerless table lost on its own
        result = table_centric_inference(problem)
        assert result.is_relevant(1)
        assert result.labels[(1, 0)] == 0
        assert result.labels[(1, 1)] == 1

    def test_no_rescue_without_confident_neighbor(self):
        # Neighbor's own potentials are flat: it is not confident, so no
        # message flows (Section 3.3's gating).
        problem = make_problem(
            "a | b",
            [2, 2],
            {
                (0, 0): [0.1, -0.1, 0.0, 0.3],
                (0, 1): [-0.1, 0.1, 0.0, 0.3],
                (1, 0): [-0.4, -0.4, 0.0, 0.3],
                (1, 1): [-0.4, -0.4, 0.0, 0.3],
            },
            edges=[((0, 0), (1, 0), 0.9), ((0, 1), (1, 1), 0.9)],
        )
        result = table_centric_inference(problem)
        assert not result.is_relevant(1)

    def test_messages_respect_nsim_magnitude(self):
        weak = table_centric_inference(rescue_problem(nsim=0.05))
        assert not weak.is_relevant(1)  # rescue needs meaningful overlap

    def test_no_edges_equals_independent(self):
        problem = make_problem(
            "a | b",
            [2],
            {(0, 0): [1.0, -0.3, 0.0, 0.2], (0, 1): [-0.3, 1.0, 0.0, 0.2]},
        )
        a = table_centric_inference(problem)
        b = independent_inference(problem)
        assert a.labels == b.labels


class TestConstraintsAlwaysHold:
    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(
            st.lists(st.floats(-2, 3, width=16), min_size=4, max_size=4),
            min_size=2,
            max_size=4,
        ),
        st.floats(0.0, 1.0),
    )
    def test_all_algorithms_satisfy_constraints(self, rows, nsim):
        # Two tables with random potentials and one cross edge.
        half = max(1, len(rows) // 2)
        potentials = {}
        widths = [half, len(rows) - half]
        if widths[1] == 0:
            widths = [half]
        idx = 0
        for ti, w in enumerate(widths):
            for ci in range(w):
                r = rows[idx]
                potentials[(ti, ci)] = [r[0], r[1], 0.0, r[3]]
                idx += 1
        edges = []
        if len(widths) == 2:
            edges = [((0, 0), (1, 0), nsim)]
        problem = make_problem("a | b", widths, potentials, edges=edges)
        for name, algo in ALGORITHMS.items():
            result = algo(problem)
            assert problem.constraints_satisfied(result.labels), (
                f"{name} violated constraints"
            )


class TestEdgeCentricAlgorithms:
    def test_alpha_expansion_finds_decisive_optimum(self):
        problem = make_problem(
            "a | b",
            [2],
            {(0, 0): [2.0, -0.3, 0.0, 0.1], (0, 1): [-0.3, 2.0, 0.0, 0.1]},
        )
        result = alpha_expansion_inference(problem)
        want = exhaustive_inference(problem)
        assert problem.score(result.labels) == pytest.approx(
            problem.score(want.labels)
        )

    def test_bp_trws_match_exhaustive_on_tree(self):
        # A two-table chain (tree) with one edge: message passing is exact.
        problem = make_problem(
            "a",
            [1, 1],
            {(0, 0): [2.0, 0.0, 0.1], (1, 0): [0.5, 0.0, 0.4]},
            edges=[((0, 0), (1, 0), 0.9)],
        )
        want = exhaustive_inference(problem)
        for algo in (belief_propagation_inference, trws_inference):
            got = algo(problem)
            assert problem.score(got.labels) == pytest.approx(
                problem.score(want.labels), rel=1e-6
            ), algo.__name__

    def test_alpha_expansion_respects_mutex_via_constrained_cut(self):
        # Two columns both preferring label 1; mutex allows only one.
        problem = make_problem(
            "a | b",
            [2],
            {(0, 0): [2.0, 0.5, 0.0, 0.0], (0, 1): [1.9, 0.5, 0.0, 0.0]},
        )
        result = alpha_expansion_inference(problem)
        labels = [result.labels[(0, 0)], result.labels[(0, 1)]]
        assert sorted(labels) == [0, 1]

    def test_algorithms_report_names(self):
        problem = make_problem("a", [1], {(0, 0): [1.0, 0.0, 0.1]})
        assert table_centric_inference(problem).algorithm == "table-centric"
        assert alpha_expansion_inference(problem).algorithm == "alpha-expansion"
        assert belief_propagation_inference(problem).algorithm == "belief-propagation"
        assert trws_inference(problem).algorithm == "trws"


class TestRepair:
    def test_detects_violations(self):
        problem = make_problem(
            "a | b",
            [2],
            {(0, 0): [1.0, 0.0, 0.0, 0.1], (0, 1): [0.0, 1.0, 0.0, 0.1]},
        )
        # mutex violation: both columns take label 1.
        bad = {(0, 0): 0, (0, 1): 0}
        assert table_violates_constraints(problem, bad, 0)
        fixed = repair_assignment(problem, bad)
        assert problem.constraints_satisfied(fixed)

    def test_all_nr_is_valid(self):
        problem = make_problem(
            "a | b",
            [2],
            {(0, 0): [1.0, 0.0, 0.0, 0.1], (0, 1): [0.0, 1.0, 0.0, 0.1]},
        )
        nr = problem.labels.nr
        assert not table_violates_constraints(
            problem, {(0, 0): nr, (0, 1): nr}, 0
        )

    def test_partial_nr_violates_all_irr(self):
        problem = make_problem(
            "a | b",
            [2],
            {(0, 0): [1.0, 0.0, 0.0, 0.1], (0, 1): [0.0, 1.0, 0.0, 0.1]},
        )
        labels = problem.labels
        bad = {(0, 0): labels.nr, (0, 1): 0}
        assert table_violates_constraints(problem, bad, 0)
