"""Tests for the HTTP serving layer: protocol, admission, overload."""

import json
import threading
import time

import pytest

from repro.consolidate.merge import AnswerRow
from repro.corpus.generator import CorpusConfig, generate_corpus
from repro.pipeline.wwt import QueryTiming
from repro.query.model import Query
from repro.serve import (
    ERROR_BAD_JSON,
    ERROR_BODY_TOO_LARGE,
    ERROR_DEADLINE_EXCEEDED,
    ERROR_INTERNAL,
    ERROR_INVALID_VALUE,
    ERROR_METHOD_NOT_ALLOWED,
    ERROR_MISSING_FIELD,
    ERROR_NOT_FOUND,
    ERROR_QUEUE_FULL,
    ERROR_RATE_LIMITED,
    ERROR_SHUTTING_DOWN,
    ERROR_UNKNOWN_FIELD,
    RateLimiter,
    ReproServer,
    ServeClient,
    ServeConfig,
    ServeError,
    TokenBucket,
    answer_payload,
    parse_query_payload,
    response_envelope,
)
from repro.serve.stats import ServerCounters
from repro.service import QueryRequest, QueryResponse, WWTService


# ---------------------------------------------------------------------------
# Stubs


class _StubEngineStats:
    def to_dict(self):
        return {"queries": 0}


def make_response(query, degraded=False, stages=("parse", "rank")):
    return QueryResponse(
        query=query,
        header=["a", "b"],
        rows=[AnswerRow(cells=["x", "y"], support=2, relevance=0.5)],
        page=1,
        page_size=10,
        total_rows=1,
        timing=QueryTiming(),
        algorithm="stub",
        stages_ran=list(stages),
        degraded=degraded,
    )


class StubService:
    """Configurable engine stand-in for deterministic admission tests."""

    def __init__(self, block=False, degraded=False, raise_exc=None):
        self.block = block
        self.degraded = degraded
        self.raise_exc = raise_exc
        #: Set when a worker enters answer(); lets tests wait until the
        #: single worker is provably busy.
        self.started = threading.Event()
        #: Workers block on this until the test releases them.
        self.release = threading.Event()
        self.requests = []
        self._lock = threading.Lock()

    def answer(self, request):
        with self._lock:
            self.requests.append(request)
        self.started.set()
        if self.block:
            assert self.release.wait(timeout=30), "test never released stub"
        if self.raise_exc is not None:
            raise self.raise_exc
        return make_response(request.query, degraded=self.degraded)

    def stats(self):
        return _StubEngineStats()


def wait_until(predicate, timeout_s=10.0):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(0.005)
    raise AssertionError("condition not reached in time")


QUERY_BODY = {"query": "country | currency"}


# ---------------------------------------------------------------------------
# ServeConfig


class TestServeConfig:
    def test_defaults_valid_and_round_trip(self):
        config = ServeConfig()
        assert config.host == "127.0.0.1"
        assert config.rate_limit is None
        assert ServeConfig.from_dict(config.to_dict()) == config

    def test_partial_from_dict(self):
        config = ServeConfig.from_dict({"workers": 2, "rate_limit": 5.0})
        assert config.workers == 2
        assert config.rate_limit == 5.0
        assert config.queue_depth == ServeConfig().queue_depth

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(ValueError, match="unknown ServeConfig keys"):
            ServeConfig.from_dict({"worker": 2})

    @pytest.mark.parametrize("bad", [
        {"host": ""},
        {"port": -1},
        {"port": 70000},
        {"workers": 0},
        {"queue_depth": 0},
        {"rate_limit": 0.0},
        {"rate_burst": 0},
        {"rate_clients": 0},
        {"default_deadline_ms": 0},
        {"max_body_bytes": 0},
        {"retry_after_s": 0},
        {"client_header": ""},
    ])
    def test_validation(self, bad):
        with pytest.raises(ValueError):
            ServeConfig(**bad)


# ---------------------------------------------------------------------------
# Protocol: request parsing


def parse(payload):
    return parse_query_payload(json.dumps(payload).encode("utf-8"))


class TestParseQueryPayload:
    def test_minimal_and_full(self):
        request = parse({"query": "country | currency"})
        assert request.query == Query.parse("country | currency")
        assert request.page == 1 and request.page_size is None
        assert request.use_cache is True and request.deadline_ms is None
        request = parse({
            "query": "dog breed", "page": 2, "page_size": 5,
            "explain": True, "use_cache": False, "inference": "bp",
            "deadline_ms": 150,
        })
        assert request.page == 2 and request.page_size == 5
        assert request.explain and not request.use_cache
        assert request.inference == "bp"
        assert request.deadline_ms == 150.0

    def test_limit_is_page_size_alias(self):
        assert parse({"query": "a", "limit": 7}).page_size == 7

    def test_limit_and_page_size_together_refused(self):
        with pytest.raises(ServeError) as exc:
            parse({"query": "a", "limit": 7, "page_size": 7})
        assert exc.value.code == ERROR_INVALID_VALUE

    def test_undecodable_body(self):
        with pytest.raises(ServeError) as exc:
            parse_query_payload(b"{not json")
        assert exc.value.code == ERROR_BAD_JSON
        with pytest.raises(ServeError) as exc:
            parse_query_payload(b"\xff\xfe")
        assert exc.value.code == ERROR_BAD_JSON

    def test_non_object_body(self):
        with pytest.raises(ServeError) as exc:
            parse_query_payload(b'["query"]')
        assert exc.value.code == ERROR_INVALID_VALUE

    def test_unknown_field_lists_known_ones(self):
        with pytest.raises(ServeError) as exc:
            parse({"query": "a", "pageSize": 5})
        assert exc.value.code == ERROR_UNKNOWN_FIELD
        assert "pageSize" in exc.value.message
        assert "page_size" in exc.value.message

    def test_missing_query(self):
        with pytest.raises(ServeError) as exc:
            parse({"page": 1})
        assert exc.value.code == ERROR_MISSING_FIELD

    @pytest.mark.parametrize("payload", [
        {"query": 7},
        {"query": "a", "page": "2"},
        {"query": "a", "page": True},
        {"query": "a", "page_size": 2.5},
        {"query": "a", "explain": "yes"},
        {"query": "a", "use_cache": 1},
        {"query": "a", "deadline_ms": "fast"},
        {"query": "a", "deadline_ms": True},
        {"query": "a", "inference": 3},
    ])
    def test_wrong_types_refused(self, payload):
        with pytest.raises(ServeError) as exc:
            parse(payload)
        assert exc.value.code == ERROR_INVALID_VALUE
        assert exc.value.status == 400

    @pytest.mark.parametrize("payload", [
        {"query": "a", "page": 0},
        {"query": "a", "page_size": 0},
        {"query": "a", "limit": -3},
        {"query": "a", "deadline_ms": 0},
        {"query": "a", "deadline_ms": -1.5},
        {"query": "  |  "},
    ])
    def test_out_of_range_values_refused(self, payload):
        with pytest.raises(ServeError) as exc:
            parse(payload)
        assert exc.value.code == ERROR_INVALID_VALUE

    def test_unknown_inference_names_options(self):
        with pytest.raises(ServeError) as exc:
            parse({"query": "a", "inference": "oracle"})
        assert exc.value.code == ERROR_INVALID_VALUE
        assert "table-centric" in exc.value.message


class TestEnvelopes:
    def test_error_envelope_shape(self):
        exc = ServeError(ERROR_QUEUE_FULL, "full", status=429, retry_after_s=2)
        assert exc.envelope() == {
            "error": {"code": "queue_full", "message": "full"}
        }

    def test_response_envelope_splits_answer_from_serving(self):
        response = make_response(Query.parse("a | b"), degraded=True)
        response.served_in = 0.5
        envelope = response_envelope(response, queue_ms=12.0)
        assert envelope["answer"] == answer_payload(response)
        assert "degraded" not in envelope["answer"]
        assert envelope["serving"]["degraded"] is True
        assert envelope["serving"]["stages_ran"] == ["parse", "rank"]
        assert envelope["serving"]["queue_ms"] == 12.0
        assert envelope["serving"]["served_in_ms"] == 500.0

    def test_answer_payload_is_json_serializable_and_stable(self):
        response = make_response(Query.parse("a | b"))
        first = json.dumps(answer_payload(response), sort_keys=True)
        second = json.dumps(answer_payload(response), sort_keys=True)
        assert first == second
        assert "support" in first


# ---------------------------------------------------------------------------
# Admission primitives on a fake clock


class TestTokenBucket:
    def test_burst_then_refusal_with_exact_retry_after(self):
        bucket = TokenBucket(rate=2.0, burst=2, now=100.0)
        assert bucket.try_take(100.0) == (True, 0.0)
        assert bucket.try_take(100.0) == (True, 0.0)
        granted, retry_after = bucket.try_take(100.0)
        assert not granted
        assert retry_after == pytest.approx(0.5)  # 1 token at 2 tokens/s

    def test_continuous_refill_caps_at_burst(self):
        bucket = TokenBucket(rate=1.0, burst=3, now=0.0)
        for _ in range(3):
            assert bucket.try_take(0.0)[0]
        assert not bucket.try_take(0.5)[0]  # only half a token back
        assert bucket.try_take(1.6)[0]      # refilled past 1
        # A long idle period refills to burst, not beyond.
        for _ in range(3):
            assert bucket.try_take(1000.0)[0]
        assert not bucket.try_take(1000.0)[0]

    def test_clock_going_backwards_is_clamped(self):
        bucket = TokenBucket(rate=1.0, burst=1, now=10.0)
        assert bucket.try_take(10.0)[0]
        granted, retry_after = bucket.try_take(5.0)
        assert not granted and retry_after > 0

    def test_validation(self):
        with pytest.raises(ValueError):
            TokenBucket(rate=0.0, burst=1, now=0.0)
        with pytest.raises(ValueError):
            TokenBucket(rate=1.0, burst=0, now=0.0)


class FakeClock:
    def __init__(self, now=0.0):
        self.now = now

    def __call__(self):
        return self.now


class TestRateLimiter:
    def test_clients_are_isolated(self):
        clock = FakeClock()
        limiter = RateLimiter(rate=1.0, burst=1, clock=clock)
        assert limiter.try_acquire("a")[0]
        assert not limiter.try_acquire("a")[0]
        assert limiter.try_acquire("b")[0]  # b has its own bucket

    def test_refill_on_fake_clock(self):
        clock = FakeClock()
        limiter = RateLimiter(rate=10.0, burst=1, clock=clock)
        assert limiter.try_acquire("a")[0]
        granted, retry_after = limiter.try_acquire("a")
        assert not granted and retry_after == pytest.approx(0.1)
        clock.now += 0.1
        assert limiter.try_acquire("a")[0]

    def test_lru_eviction_bounds_tracked_clients(self):
        clock = FakeClock()
        limiter = RateLimiter(rate=1.0, burst=1, max_clients=2, clock=clock)
        assert limiter.try_acquire("a")[0]
        assert limiter.try_acquire("b")[0]
        assert limiter.try_acquire("a")[0] is False  # refreshes a's recency
        assert limiter.try_acquire("c")[0]  # evicts b (least recent)
        assert len(limiter) == 2
        assert limiter.bucket_tokens("b") is None
        # The evicted client restarts with a full (fresh) bucket.
        assert limiter.try_acquire("b")[0]


class TestServerCounters:
    def test_reject_reasons(self):
        counters = ServerCounters()
        for reason in ("queue_full", "rate_limited", "invalid", "shutdown"):
            counters.reject(reason)
        stats = counters.snapshot(queue_depth=0, uptime_s=1.0).to_dict()
        assert stats["rejected"] == {
            "queue_full": 1, "rate_limited": 1, "invalid": 1, "shutdown": 1,
        }
        with pytest.raises(ValueError):
            counters.reject("nope")

    def test_execution_lifecycle(self):
        counters = ServerCounters()
        counters.accept()
        counters.start_execution(0.25)
        mid = counters.snapshot(queue_depth=0, uptime_s=1.0)
        assert mid.in_flight == 1 and mid.completed == 0
        counters.finish_execution(0.5, degraded=True, failed=False)
        done = counters.snapshot(queue_depth=0, uptime_s=2.0)
        assert done.in_flight == 0
        assert done.completed == 1 and done.shed_degraded == 1
        assert done.queue_wait.count == 1 and done.handle.count == 1
        counters.accept()
        counters.start_execution(0.0)
        counters.finish_execution(0.1, degraded=False, failed=True)
        assert counters.snapshot(0, 3.0).errors_internal == 1


# ---------------------------------------------------------------------------
# The server over real sockets (stub engine)


def start_stub(service, **overrides):
    defaults = dict(port=0, workers=1, queue_depth=4)
    defaults.update(overrides)
    return ReproServer(service, ServeConfig(**defaults)).start()


class TestServerAdmission:
    def test_queue_full_rejects_with_retry_after(self):
        stub = StubService(block=True)
        server = start_stub(stub, workers=1, queue_depth=1, retry_after_s=3)
        results = []

        def post():
            with ServeClient(server.host, server.port) as client:
                results.append(client.query(QUERY_BODY))

        try:
            first = threading.Thread(target=post)
            first.start()
            assert stub.started.wait(timeout=10)  # worker is busy
            second = threading.Thread(target=post)
            second.start()
            wait_until(lambda: server.queue_depth == 1)  # queue is full
            with ServeClient(server.host, server.port) as client:
                status, headers, body = client.query(QUERY_BODY)
            assert status == 429
            assert body["error"]["code"] == ERROR_QUEUE_FULL
            assert headers["retry-after"] == "3"
            stub.release.set()
            first.join(timeout=30)
            second.join(timeout=30)
            assert [status for status, _, _ in results] == [200, 200]
            stats = server.stats()
            assert stats.accepted == 2 and stats.completed == 2
            assert stats.rejected_queue_full == 1
        finally:
            stub.release.set()
            server.shutdown()

    def test_rate_limit_rejects_per_client(self):
        # One token, glacial refill: the second request from the same
        # client must be refused; an unrelated client is untouched.
        server = start_stub(
            StubService(), rate_limit=0.001, rate_burst=1, workers=2,
        )
        try:
            with ServeClient(server.host, server.port, client_id="a") as a:
                assert a.query(QUERY_BODY)[0] == 200
                status, headers, body = a.query(QUERY_BODY)
                assert status == 429
                assert body["error"]["code"] == ERROR_RATE_LIMITED
                assert int(headers["retry-after"]) >= 1
            with ServeClient(server.host, server.port, client_id="b") as b:
                assert b.query(QUERY_BODY)[0] == 200
            assert server.stats().rejected_rate_limited == 1
        finally:
            server.shutdown()

    def test_stats_and_healthz_respond_while_workers_are_saturated(self):
        stub = StubService(block=True)
        server = start_stub(stub, workers=1)
        try:
            poster = threading.Thread(
                target=lambda: ServeClient(
                    server.host, server.port
                ).query(QUERY_BODY),
            )
            poster.start()
            assert stub.started.wait(timeout=10)
            with ServeClient(server.host, server.port) as client:
                status, _, health = client.healthz()
                assert status == 200 and health["status"] == "ok"
                status, _, stats = client.stats()
                assert status == 200
                assert stats["server"]["in_flight"] == 1
                assert stats["server"]["accepted"] == 1
                assert stats["server"]["completed"] == 0
                assert stats["service"] == {"queries": 0}
            stub.release.set()
            poster.join(timeout=30)
        finally:
            stub.release.set()
            server.shutdown()

    def test_default_deadline_and_per_request_override_reach_engine(self):
        stub = StubService()
        server = start_stub(stub, default_deadline_ms=500.0)
        try:
            with ServeClient(server.host, server.port) as client:
                assert client.query(QUERY_BODY)[0] == 200
                assert client.query(
                    dict(QUERY_BODY, deadline_ms=50_000.0)
                )[0] == 200
            seen = [request.deadline_ms for request in stub.requests]
            # Queue wait is deducted from the budget, so the engine sees
            # slightly less than the nominal deadline — never more.
            assert 0 < seen[0] <= 500.0
            assert 500.0 < seen[1] <= 50_000.0
        finally:
            server.shutdown()

    def test_degraded_answers_are_counted_and_flagged(self):
        server = start_stub(StubService(degraded=True))
        try:
            with ServeClient(server.host, server.port) as client:
                status, _, body = client.query(QUERY_BODY)
            assert status == 200
            assert body["serving"]["degraded"] is True
            assert server.stats().shed_degraded == 1
        finally:
            server.shutdown()

    def test_engine_crash_is_a_500_envelope(self):
        server = start_stub(StubService(raise_exc=RuntimeError("boom")))
        try:
            with ServeClient(server.host, server.port) as client:
                status, _, body = client.query(QUERY_BODY)
            assert status == 500
            assert body["error"]["code"] == ERROR_INTERNAL
            assert "boom" in body["error"]["message"]
            assert server.stats().errors_internal == 1
        finally:
            server.shutdown()

    def test_strict_deadline_timeout_is_a_504(self):
        server = start_stub(StubService(raise_exc=TimeoutError("over budget")))
        try:
            with ServeClient(server.host, server.port) as client:
                status, _, body = client.query(QUERY_BODY)
            assert status == 504
            assert body["error"]["code"] == ERROR_DEADLINE_EXCEEDED
        finally:
            server.shutdown()

    def test_routing_envelopes(self):
        server = start_stub(StubService())
        try:
            with ServeClient(server.host, server.port) as client:
                status, _, body = client.request("GET", "/nope")
                assert status == 404
                assert body["error"]["code"] == ERROR_NOT_FOUND
            with ServeClient(server.host, server.port) as client:
                status, _, body = client.request("GET", "/query")
                assert status == 405
                assert body["error"]["code"] == ERROR_METHOD_NOT_ALLOWED
            with ServeClient(server.host, server.port) as client:
                status, _, body = client.request("POST", "/healthz", b"{}")
                assert status == 404
        finally:
            server.shutdown()

    def test_malformed_bodies_over_the_wire(self):
        server = start_stub(StubService(), max_body_bytes=64)
        try:
            with ServeClient(server.host, server.port) as client:
                status, _, body = client.request("POST", "/query", b"{nope")
                assert status == 400
                assert body["error"]["code"] == ERROR_BAD_JSON
            with ServeClient(server.host, server.port) as client:
                status, _, body = client.request("POST", "/query", b"")
                assert status == 400
                assert body["error"]["code"] == ERROR_BAD_JSON
            with ServeClient(server.host, server.port) as client:
                big = json.dumps(
                    {"query": "a", "inference": "x" * 100}
                ).encode()
                status, _, body = client.request("POST", "/query", big)
                assert status == 413
                assert body["error"]["code"] == ERROR_BODY_TOO_LARGE
            assert server.stats().rejected_invalid == 3
        finally:
            server.shutdown()

    def test_graceful_shutdown_drains_in_flight_work(self):
        stub = StubService(block=True)
        server = start_stub(stub, workers=1)
        results = []

        def post():
            with ServeClient(server.host, server.port) as client:
                results.append(client.query(QUERY_BODY))

        poster = threading.Thread(target=post)
        poster.start()
        assert stub.started.wait(timeout=10)
        stopper = threading.Thread(target=server.shutdown)
        stopper.start()
        wait_until(lambda: server.is_draining)
        # New work is refused while the admitted job drains.
        with ServeClient(server.host, server.port) as client:
            status, _, body = client.query(QUERY_BODY)
        assert status == 503
        assert body["error"]["code"] == ERROR_SHUTTING_DOWN
        stub.release.set()
        poster.join(timeout=30)
        stopper.join(timeout=30)
        # The in-flight request got its real answer, not a refusal.
        assert [status for status, _, _ in results] == [200]
        assert server.stats().rejected_shutdown == 1
        # shutdown() is idempotent.
        server.shutdown()

    def test_start_twice_refused(self):
        server = start_stub(StubService())
        try:
            with pytest.raises(RuntimeError, match="already started"):
                server.start()
        finally:
            server.shutdown()

    def test_context_manager_starts_and_stops(self):
        with ReproServer(StubService(), ServeConfig(port=0)) as server:
            with ServeClient(server.host, server.port) as client:
                assert client.healthz()[0] == 200
        assert server.is_draining


# ---------------------------------------------------------------------------
# Served answers vs the in-process engine (the real service)


@pytest.fixture(scope="module")
def corpus():
    return generate_corpus(CorpusConfig(seed=42, scale=0.05)).corpus


@pytest.fixture()
def service(corpus):
    return WWTService(corpus)


class TestServedIdentity:
    def test_served_answer_is_byte_identical_to_direct(self, service):
        with ReproServer(service, ServeConfig(port=0, workers=2)) as server:
            with ServeClient(server.host, server.port) as client:
                status, _, body = client.query(
                    {"query": "country | currency", "page_size": 5}
                )
                assert status == 200
                direct = answer_payload(service.answer(
                    QueryRequest.parse("country | currency", page_size=5)
                ))
                assert (
                    json.dumps(body["answer"], sort_keys=True)
                    == json.dumps(direct, sort_keys=True)
                )

    def test_pagination_over_the_wire(self, service):
        with ReproServer(service, ServeConfig(port=0)) as server:
            with ServeClient(server.host, server.port) as client:
                status, _, page1 = client.query(
                    {"query": "country | currency", "limit": 2}
                )
                assert status == 200
                answer = page1["answer"]
                assert answer["page"] == 1 and answer["page_size"] == 2
                assert len(answer["rows"]) <= 2
                if answer["num_pages"] > 1:
                    status, _, page2 = client.query({
                        "query": "country | currency", "limit": 2, "page": 2,
                    })
                    assert page2["answer"]["page"] == 2
                    assert page2["answer"]["rows"] != answer["rows"]

    def test_cache_hit_flagged_in_serving_section(self, service):
        with ReproServer(service, ServeConfig(port=0)) as server:
            with ServeClient(server.host, server.port) as client:
                _, _, cold = client.query(QUERY_BODY)
                _, _, warm = client.query(QUERY_BODY)
                assert cold["serving"]["cache_hit"] is False
                assert warm["serving"]["cache_hit"] is True
                assert (
                    json.dumps(cold["answer"], sort_keys=True)
                    == json.dumps(warm["answer"], sort_keys=True)
                )

    def test_tight_deadline_sheds_to_degraded_answer(self, service):
        with ReproServer(service, ServeConfig(port=0)) as server:
            with ServeClient(server.host, server.port) as client:
                status, _, body = client.query({
                    "query": "country | currency",
                    "deadline_ms": 0.02, "use_cache": False,
                })
            assert status == 200  # shed, not timed out
            assert body["serving"]["degraded"] is True
            ran = body["serving"]["stages_ran"]
            assert "parse" in ran
            assert len(ran) < 9  # some stages were skipped
            assert server.stats().shed_degraded == 1
