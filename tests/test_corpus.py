"""Tests for the synthetic corpus generator and ground truth."""

import random


from repro.corpus.domains import REGISTRY, build_registry
from repro.corpus.generator import CorpusConfig, generate_corpus
from repro.corpus.groundtruth import GroundTruth, TableProvenance, label_table
from repro.corpus.pages import render_page
from repro.html.parser import parse_html
from repro.tables.extractor import extract_tables


class TestRegistry:
    def test_all_workload_domains_exist(self):
        from repro.query.workload import WORKLOAD

        for wq in WORKLOAD:
            if wq.domain_key is not None:
                assert wq.domain_key in REGISTRY, wq.query_id
                domain = REGISTRY[wq.domain_key]
                for attr in wq.attr_keys:
                    domain.attribute_index(attr)  # raises if missing

    def test_rows_match_attribute_width(self):
        for domain in REGISTRY.values():
            width = len(domain.attributes)
            for row in domain.rows:
                assert len(row) == width, domain.key

    def test_subject_is_first_attribute(self):
        from repro.query.workload import WORKLOAD

        for wq in WORKLOAD:
            if wq.domain_key is None:
                continue
            domain = REGISTRY[wq.domain_key]
            assert domain.attribute_index(wq.attr_keys[0]) == 0, wq.query_id

    def test_registry_deterministic(self):
        a = build_registry(seed=7)
        b = build_registry(seed=7)
        assert set(a) == set(b)
        assert a["explorers"].rows == b["explorers"].rows

    def test_distractors_flagged(self):
        assert REGISTRY["d_forest_reserves"].is_distractor
        assert not REGISTRY["explorers"].is_distractor


class TestRenderPage:
    def test_single_extractable_table(self):
        rng = random.Random(5)
        for _ in range(30):
            page = render_page(REGISTRY["explorers"], 0, rng)
            root = parse_html(page.html)
            tables = extract_tables(root)
            data = [t for t in tables if t.num_cols == len(page.column_attrs)]
            assert len(data) == 1

    def test_column_attrs_align_with_extraction(self):
        rng = random.Random(9)
        page = render_page(REGISTRY["countries"], 0, rng)
        root = parse_html(page.html)
        [table] = [
            t for t in extract_tables(root)
            if t.num_cols == len(page.column_attrs)
        ]
        domain = REGISTRY["countries"]
        # Spot-check: the subject column holds country names from the
        # relation rows.
        subject_pos = page.column_attrs.index("name")
        names = {r[0] for r in domain.rows}
        values = set(table.column_values(subject_pos))
        assert values and values <= names

    def test_headerless_pages_occur(self):
        rng = random.Random(1)
        outcomes = {
            render_page(REGISTRY["countries"], i, rng).num_header_rows_written
            for i in range(60)
        }
        assert 0 in outcomes and 1 in outcomes


class TestGenerateCorpus:
    def test_small_scale_generation(self):
        syn = generate_corpus(CorpusConfig(seed=3, scale=0.1))
        assert syn.num_tables == len(syn.provenance)
        assert syn.num_tables > 50
        # Index and store agree.
        assert len(syn.corpus.store) == syn.num_tables

    def test_header_histogram_roughly_matches_paper(self):
        syn = generate_corpus(CorpusConfig(seed=3, scale=0.5))
        hist = syn.census.header_row_histogram
        total = sum(hist.values())
        frac_none = hist.get(0, 0) / total
        frac_one = hist.get(1, 0) / total
        # Paper: 18% none, 60% one, 17% two, 5% more.
        assert 0.08 <= frac_none <= 0.30
        assert 0.45 <= frac_one <= 0.80

    def test_domain_restriction(self):
        syn = generate_corpus(
            CorpusConfig(seed=3, scale=1.0, domains=("explorers",))
        )
        assert all(
            p.domain_key == "explorers" for p in syn.provenance.values()
        )

    def test_deterministic(self):
        a = generate_corpus(CorpusConfig(seed=5, scale=0.1))
        b = generate_corpus(CorpusConfig(seed=5, scale=0.1))
        assert a.corpus.store.ids() == b.corpus.store.ids()
        ta = a.corpus.store.get(a.corpus.store.ids()[0])
        tb = b.corpus.store.get(b.corpus.store.ids()[0])
        assert ta.to_dict() == tb.to_dict()


class TestGroundTruthLabeling:
    def prov(self, attrs, domain="countries", distractor=False):
        return TableProvenance(
            table_id="t", domain_key=domain, column_attrs=tuple(attrs),
            is_distractor=distractor,
        )

    def test_full_match(self):
        label = label_table(self.prov(["name", "currency"]), "countries",
                            ["name", "currency"])
        assert label.relevant
        assert label.mapping == {0: 1, 1: 2}

    def test_permuted_columns(self):
        label = label_table(self.prov(["currency", "gdp", "name"]), "countries",
                            ["name", "currency"])
        assert label.relevant
        assert label.mapping == {2: 1, 0: 2}

    def test_missing_subject_irrelevant(self):
        label = label_table(self.prov(["currency", "gdp"]), "countries",
                            ["name", "currency"])
        assert not label.relevant

    def test_min_match_requires_two_columns(self):
        label = label_table(self.prov(["name", "gdp"]), "countries",
                            ["name", "currency"])
        assert not label.relevant  # only 1 of 2 query columns present

    def test_single_column_query_needs_subject_only(self):
        label = label_table(self.prov(["name", "gdp"]), "countries", ["name"])
        assert label.relevant
        assert label.mapping == {0: 1}

    def test_distractor_always_irrelevant(self):
        label = label_table(
            self.prov(["name", "currency"], distractor=True),
            "countries", ["name", "currency"],
        )
        assert not label.relevant

    def test_wrong_domain_irrelevant(self):
        label = label_table(self.prov(["name"]), "dogs", ["name"])
        assert not label.relevant

    def test_none_domain_all_irrelevant(self):
        label = label_table(self.prov(["name"]), None, [])
        assert not label.relevant

    def test_label_of_names(self):
        label = label_table(self.prov(["name", "currency"]), "countries",
                            ["name", "currency"])
        assert label.label_of(0, 2) == "1"
        assert label.label_of(1, 2) == "2"
        irrelevant = label_table(self.prov(["x"]), "countries", ["name"])
        assert irrelevant.label_of(0, 1) == "nr"

    def test_groundtruth_container(self):
        truth = GroundTruth()
        prov = {
            "t1": self.prov(["name", "currency"]),
            "t2": self.prov(["gdp"], domain="other"),
        }
        truth = GroundTruth.from_provenance(
            prov, {"q": ("countries", ("name", "currency"))}
        )
        assert truth.relevant_tables("q") == ("t1",)
        assert not truth.label("q", "t2").relevant
        assert not truth.label("q", "unknown").relevant
        assert not truth.label("zzz", "t1").relevant
