"""Tests for the command-line interface."""

import io
import json
import re
import signal
import subprocess
import sys
from pathlib import Path

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_query_defaults(self):
        args = build_parser().parse_args(["query", "country | currency"])
        assert args.text == "country | currency"
        assert args.inference == "table-centric"
        assert args.scale == 0.4
        assert args.trace is False

    def test_batch_deadline_default_off(self):
        args = build_parser().parse_args(["batch", "a | b"])
        assert args.deadline_ms is None

    def test_eval_method_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["eval", "--methods", "bogus"])

    def test_workload_command(self):
        args = build_parser().parse_args(["workload"])
        assert args.command == "workload"


class TestCommands:
    def test_workload_lists_queries(self):
        out = io.StringIO()
        assert main(["workload"], out=out) == 0
        text = out.getvalue()
        assert "dog breed" in text
        assert "us states | capitals | largest cities" in text
        assert text.count("\n") >= 60

    def test_query_end_to_end(self):
        out = io.StringIO()
        code = main(
            ["query", "country | currency", "--scale", "0.15", "--rows", "3"],
            out=out,
        )
        assert code == 0
        text = out.getvalue()
        assert "candidates:" in text
        assert "country | currency" in text
        assert "trace:" not in text  # only under --trace

    def test_query_trace_prints_span_tree(self):
        out = io.StringIO()
        code = main(
            ["query", "country | currency", "--scale", "0.15", "--rows", "3",
             "--trace"],
            out=out,
        )
        assert code == 0
        text = out.getvalue()
        assert "trace:" in text
        for stage in ("parse", "probe.index1", "probe.read2", "column_map",
                      "consolidate", "rank"):
            assert stage in text
        assert "ms" in text

    def test_query_invalid_rows_is_cli_error(self, capsys):
        code = main(
            ["query", "country | currency", "--scale", "0.02",
             "--rows", "0"],
            out=io.StringIO(),
        )
        assert code == 2
        assert "page_size" in capsys.readouterr().err

    def test_batch_deadline_ms_reports_degraded(self):
        out = io.StringIO()
        code = main(
            ["batch", "country | currency", "dog breed", "--scale", "0.15",
             "--deadline-ms", "0.001"],
            out=out,
        )
        assert code == 0
        text = out.getvalue()
        assert "(degraded)" in text
        assert "deadline 0.001ms:" in text
        assert "2 deadline hits" in text

    def test_batch_without_deadline_not_degraded(self):
        out = io.StringIO()
        code = main(
            ["batch", "country | currency", "--scale", "0.15"], out=out
        )
        assert code == 0
        assert "(degraded)" not in out.getvalue()

    def test_batch_invalid_deadline_is_cli_error(self, capsys):
        code = main(
            ["batch", "country | currency", "--scale", "0.02",
             "--deadline-ms", "-5"],
            out=io.StringIO(),
        )
        assert code == 2
        assert "deadline_ms" in capsys.readouterr().err

    def test_bad_config_file_is_cli_error(self, capsys):
        out = io.StringIO()
        code = main(
            ["query", "country | currency", "--config", "/nonexistent.json"],
            out=out,
        )
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_invalid_query_text_is_cli_error(self, capsys):
        out = io.StringIO()
        code = main(["query", "  |  ", "--scale", "0.02"], out=out)
        assert code == 2
        assert "column keyword" in capsys.readouterr().err

    def test_corpus_census_and_save(self, tmp_path):
        out = io.StringIO()
        path = tmp_path / "store.jsonl"
        code = main(
            ["corpus", "--scale", "0.05", "--save", str(path)], out=out
        )
        assert code == 0
        assert path.exists()
        assert "data tables:" in out.getvalue()
        from repro.index.store import TableStore

        store = TableStore.load(path)
        assert len(store) > 10


class TestIndexCommands:
    def test_build_requires_out(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["index", "build"])

    def test_index_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["index"])

    def test_build_then_info_then_query(self, tmp_path):
        corpus_dir = str(tmp_path / "corpus")
        out = io.StringIO()
        code = main(
            ["index", "build", "--out", corpus_dir, "--scale", "0.1",
             "--num-shards", "3"],
            out=out,
        )
        assert code == 0
        built_text = out.getvalue()
        assert "3-shard corpus" in built_text
        assert "shard sizes:" in built_text

        out = io.StringIO()
        assert main(["index", "info", corpus_dir], out=out) == 0
        info_text = out.getvalue()
        assert "kind: sharded" in info_text
        assert "num_shards: 3" in info_text
        assert "shard-0000" in info_text

        out = io.StringIO()
        code = main(
            ["query", "country | currency", "--index", corpus_dir,
             "--rows", "3"],
            out=out,
        )
        assert code == 0
        assert "candidates:" in out.getvalue()

    def test_build_monolithic_by_default(self, tmp_path):
        corpus_dir = str(tmp_path / "mono")
        out = io.StringIO()
        code = main(
            ["index", "build", "--out", corpus_dir, "--scale", "0.1"],
            out=out,
        )
        assert code == 0
        assert "monolithic corpus" in out.getvalue()
        out = io.StringIO()
        assert main(["index", "info", corpus_dir], out=out) == 0
        assert "kind: monolithic" in out.getvalue()

    def test_incremental_add_compact_flow(self, tmp_path):
        """The README quickstart: index build -> add -> compact."""
        corpus_dir = str(tmp_path / "corpus")
        out = io.StringIO()
        assert main(
            ["index", "build", "--out", corpus_dir, "--scale", "0.05",
             "--num-shards", "2"],
            out=out,
        ) == 0

        out = io.StringIO()
        assert main(
            ["index", "add", corpus_dir, "--scale", "0.02",
             "--prefix", "live-"],
            out=out,
        ) == 0
        add_text = out.getvalue()
        assert "journaled" in add_text
        assert "journal_depth:" in add_text

        out = io.StringIO()
        assert main(["index", "info", corpus_dir], out=out) == 0
        info_text = out.getvalue()
        assert "journal_seq: 0" in info_text
        assert "journal_depth: 0" not in info_text  # journal is non-empty

        # Queries serve the journaled corpus (snapshot + replayed journal).
        out = io.StringIO()
        assert main(
            ["query", "country | currency", "--index", corpus_dir,
             "--rows", "2"],
            out=out,
        ) == 0

        out = io.StringIO()
        assert main(["index", "compact", corpus_dir], out=out) == 0
        compact_text = out.getvalue()
        assert "folded" in compact_text
        assert "journal_depth: 0" in compact_text

        out = io.StringIO()
        assert main(["index", "info", corpus_dir], out=out) == 0
        info_text = out.getvalue()
        assert "journal_depth: 0" in info_text
        assert "journal_seq: 0" not in info_text  # seq advanced

    def test_add_with_colliding_prefix_is_cli_error(self, tmp_path, capsys):
        corpus_dir = str(tmp_path / "corpus")
        out = io.StringIO()
        assert main(
            ["index", "build", "--out", corpus_dir, "--scale", "0.05"],
            out=out,
        ) == 0
        # An empty prefix regenerates ids the build already took.
        code = main(
            ["index", "add", corpus_dir, "--scale", "0.05", "--seed", "42",
             "--prefix", ""],
            out=io.StringIO(),
        )
        assert code == 2
        assert "already in corpus" in capsys.readouterr().err

    def test_info_field_names_match_spec(self, tmp_path):
        """`index info` keys must equal the DESIGN.md spec's field names."""
        corpus_dir = str(tmp_path / "corpus")
        assert main(
            ["index", "build", "--out", corpus_dir, "--scale", "0.05"],
            out=io.StringIO(),
        ) == 0
        out = io.StringIO()
        assert main(["index", "info", corpus_dir], out=out) == 0
        keys = [
            line.split(":")[0] for line in out.getvalue().splitlines()
            if ":" in line and not line.startswith(" ")
        ]
        assert keys[:8] == [
            "format", "version", "kind", "num_shards", "num_tables",
            "journal_seq", "journal_depth", "boosts",
        ]

    def test_info_on_non_corpus_is_cli_error(self, tmp_path, capsys):
        out = io.StringIO()
        code = main(["index", "info", str(tmp_path)], out=out)
        assert code == 2
        assert "not a persisted corpus" in capsys.readouterr().err

    def test_config_num_shards_selects_sharded_backend(self, tmp_path):
        import json as _json

        from repro.cli import _build_service, build_parser

        config_path = tmp_path / "cfg.json"
        config_path.write_text(_json.dumps({"num_shards": 3}))
        args = build_parser().parse_args(
            ["query", "country | currency", "--scale", "0.1",
             "--config", str(config_path)]
        )
        service = _build_service(args)
        assert service.corpus.num_shards == 3

    def test_index_with_nondefault_scale_warns(self, tmp_path, capsys):
        corpus_dir = str(tmp_path / "corpus")
        out = io.StringIO()
        assert main(
            ["index", "build", "--out", corpus_dir, "--scale", "0.1"],
            out=out,
        ) == 0
        out = io.StringIO()
        assert main(
            ["query", "dog breed", "--index", corpus_dir, "--scale", "0.9"],
            out=out,
        ) == 0
        assert "--scale/--seed" in capsys.readouterr().err


class TestServeCommand:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.command == "serve"
        assert args.host == "127.0.0.1"
        assert args.port == 8080
        assert args.workers == 4
        assert args.queue_depth == 64
        assert args.rate_limit is None
        assert args.burst == 10
        assert args.deadline_ms is None

    def test_build_server_wires_flags_through(self):
        from repro.cli import _build_server

        args = build_parser().parse_args(
            ["serve", "--scale", "0.02", "--port", "0", "--workers", "2",
             "--queue-depth", "5", "--rate-limit", "9.5", "--burst", "3",
             "--deadline-ms", "250"]
        )
        server = _build_server(args)
        config = server.config
        assert config.port == 0
        assert config.workers == 2
        assert config.queue_depth == 5
        assert config.rate_limit == 9.5
        assert config.rate_burst == 3
        assert config.default_deadline_ms == 250

    def test_serve_loopback_round_trip(self):
        """Start the built server in-process and query it over a socket."""
        from repro.cli import _build_server
        from repro.serve import ServeClient

        args = build_parser().parse_args(
            ["serve", "--scale", "0.02", "--port", "0", "--workers", "2"]
        )
        server = _build_server(args).start()
        try:
            with ServeClient(server.host, server.port) as client:
                status, _, body = client.healthz()
                assert status == 200 and body["status"] == "ok"
                status, _, body = client.query(
                    {"query": "country | currency"}
                )
                assert status == 200
                assert body["answer"]["header"]
                assert body["serving"]["cache_hit"] is False
        finally:
            server.shutdown()

    def test_invalid_serve_flags_are_cli_errors(self, capsys):
        code = main(
            ["serve", "--scale", "0.02", "--port", "0", "--workers", "0"],
            out=io.StringIO(),
        )
        assert code == 2
        assert "workers" in capsys.readouterr().err

    def test_serve_subprocess_sigint_drains_and_exits_zero(self):
        """The README flow: start `repro serve`, query it, Ctrl-C it."""
        import http.client

        repo_src = Path(__file__).resolve().parent.parent / "src"
        proc = subprocess.Popen(
            [sys.executable, "-u", "-m", "repro", "serve", "--port", "0",
             "--scale", "0.02"],
            stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
            env={"PYTHONPATH": str(repo_src), "PATH": "/usr/bin:/bin"},
        )
        try:
            banner = proc.stdout.readline()
            match = re.search(r"http://([\d.]+):(\d+)", banner)
            assert match, f"no serving banner in {banner!r}"
            host, port = match.group(1), int(match.group(2))
            conn = http.client.HTTPConnection(host, port, timeout=60)
            conn.request("GET", "/healthz")
            reply = conn.getresponse()
            assert reply.status == 200
            reply.read()
            conn.request(
                "POST", "/query",
                body=json.dumps({"query": "dog breed"}).encode("utf-8"),
                headers={"Content-Type": "application/json"},
            )
            reply = conn.getresponse()
            body = json.loads(reply.read())
            assert reply.status == 200
            assert "answer" in body and "serving" in body
            conn.close()
        finally:
            proc.send_signal(signal.SIGINT)
            returncode = proc.wait(timeout=60)
        assert returncode == 0
        assert "shutting down" in proc.stdout.read()
