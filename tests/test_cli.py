"""Tests for the command-line interface."""

import io

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_query_defaults(self):
        args = build_parser().parse_args(["query", "country | currency"])
        assert args.text == "country | currency"
        assert args.inference == "table-centric"
        assert args.scale == 0.4

    def test_eval_method_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["eval", "--methods", "bogus"])

    def test_workload_command(self):
        args = build_parser().parse_args(["workload"])
        assert args.command == "workload"


class TestCommands:
    def test_workload_lists_queries(self):
        out = io.StringIO()
        assert main(["workload"], out=out) == 0
        text = out.getvalue()
        assert "dog breed" in text
        assert "us states | capitals | largest cities" in text
        assert text.count("\n") >= 60

    def test_query_end_to_end(self):
        out = io.StringIO()
        code = main(
            ["query", "country | currency", "--scale", "0.15", "--rows", "3"],
            out=out,
        )
        assert code == 0
        text = out.getvalue()
        assert "candidates:" in text
        assert "country | currency" in text

    def test_bad_config_file_is_cli_error(self, capsys):
        out = io.StringIO()
        code = main(
            ["query", "country | currency", "--config", "/nonexistent.json"],
            out=out,
        )
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_invalid_query_text_is_cli_error(self, capsys):
        out = io.StringIO()
        code = main(["query", "  |  ", "--scale", "0.02"], out=out)
        assert code == 2
        assert "column keyword" in capsys.readouterr().err

    def test_corpus_census_and_save(self, tmp_path):
        out = io.StringIO()
        path = tmp_path / "store.jsonl"
        code = main(
            ["corpus", "--scale", "0.05", "--save", str(path)], out=out
        )
        assert code == 0
        assert path.exists()
        assert "data tables:" in out.getvalue()
        from repro.index.store import TableStore

        store = TableStore.load(path)
        assert len(store) > 10
