"""Tests for the constrained minimum s-t cut (Fig. 4)."""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.flow.constrained_cut import constrained_min_cut
from repro.flow.network import FlowNetwork


def build(edges, num_nodes):
    net = FlowNetwork(num_nodes)
    for u, v, c in edges:
        net.add_edge(u, v, float(c))
    return net


def cut_capacity(edges, t_side):
    return sum(c for u, v, c in edges if u not in t_side and v in t_side)


def brute_force_constrained(edges, num_nodes, s, t, groups):
    """Minimum feasible cut by enumerating all partitions."""
    others = [v for v in range(num_nodes) if v not in (s, t)]
    best = float("inf")
    for r in range(len(others) + 1):
        for subset in itertools.combinations(others, r):
            t_side = set(subset) | {t}
            if any(sum(v in t_side for v in g) > 1 for g in groups):
                continue
            best = min(best, cut_capacity(edges, t_side))
    return best


class TestConstrainedCut:
    def test_unconstrained_when_feasible(self):
        # Min cut naturally satisfies groups -> no repair needed.
        edges = [(0, 2, 1), (0, 3, 5), (2, 1, 5), (3, 1, 1)]
        net = build(edges, 4)
        t_side, _ = constrained_min_cut(net, 0, 1, groups=[[2], [3]])
        assert 1 in t_side and 0 not in t_side
        assert cut_capacity(edges, t_side) == 2  # cut {0->2, 3->1}

    def test_group_violation_repaired(self):
        # Both 2 and 3 would naturally sit on the t side; group forces one out.
        edges = [(0, 2, 1), (0, 3, 1), (2, 1, 10), (3, 1, 10)]
        net = build(edges, 4)
        t_side, _ = constrained_min_cut(net, 0, 1, groups=[[2, 3]])
        assert len(t_side & {2, 3}) <= 1

    def test_picks_cheaper_member_to_keep(self):
        # Keeping node 3 on the t side costs less extra flow than keeping 2.
        edges = [(0, 2, 2), (0, 3, 1), (2, 1, 10), (3, 1, 10)]
        net = build(edges, 4)
        t_side, _ = constrained_min_cut(net, 0, 1, groups=[[2, 3]])
        feasible = brute_force_constrained(edges, 4, 0, 1, [[2, 3]])
        assert cut_capacity(edges, t_side) == feasible

    def test_disjointness_validated(self):
        net = build([(0, 2, 1), (2, 1, 1)], 3)
        with pytest.raises(ValueError):
            constrained_min_cut(net, 0, 1, groups=[[2], [2]])

    def test_terminal_separation_kept(self):
        edges = [(0, 2, 3), (2, 3, 2), (3, 1, 3)]
        net = build(edges, 4)
        t_side, flow = constrained_min_cut(net, 0, 1, groups=[[2], [3]])
        assert 0 not in t_side
        assert 1 in t_side
        assert flow == 2

    @settings(max_examples=50, deadline=None)
    @given(
        st.lists(
            st.tuples(st.integers(0, 4), st.integers(0, 4), st.integers(1, 6)).filter(
                lambda e: e[0] != e[1]
            ),
            min_size=2,
            max_size=10,
        )
    )
    def test_feasibility_and_quality(self, raw_edges):
        # s=0, t=1; two groups over the middle nodes.
        merged = {}
        for u, v, c in raw_edges:
            merged[(u, v)] = merged.get((u, v), 0) + c
        edges = [(u, v, c) for (u, v), c in merged.items()]
        groups = [[2, 3], [4]]
        net = build(edges, 5)
        t_side, _ = constrained_min_cut(net, 0, 1, groups=groups)

        # Feasible: group constraint + terminal separation.
        for g in groups:
            assert sum(v in t_side for v in g) <= 1
        assert 0 not in t_side and 1 in t_side

        # Never better than the true optimum; here we also sanity-bound it
        # by the trivial cut (all middle nodes on the s side).
        opt = brute_force_constrained(edges, 5, 0, 1, groups)
        got = cut_capacity(edges, t_side)
        trivial = cut_capacity(edges, {1})
        assert got + 1e-9 >= opt
        assert got <= trivial + opt  # loose guard against pathological repair
