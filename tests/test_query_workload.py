"""Tests for the query model and the 59-query workload (Table 1)."""

import pytest

from repro.query.model import Query, WorkloadQuery
from repro.query.workload import WORKLOAD, load_workload, query_by_id


class TestQuery:
    def test_parse_pipes(self):
        q = Query.parse("country | currency")
        assert q.columns == ("country", "currency")
        assert q.q == 2

    def test_parse_strips_whitespace(self):
        q = Query.parse("  a |  b c  | d ")
        assert q.columns == ("a", "b c", "d")

    def test_empty_query_rejected(self):
        with pytest.raises(ValueError):
            Query(columns=())
        with pytest.raises(ValueError):
            Query(columns=("a", " "))

    def test_column_tokens_analyzed(self):
        q = Query.parse("Names of Explorers | Nationality")
        assert q.column_tokens(0) == ["name", "explorer"]

    def test_all_tokens_union(self):
        q = Query.parse("country | currency")
        assert q.all_tokens() == ["country", "currency"]

    def test_min_match(self):
        assert Query.parse("a").min_match() == 1
        assert Query.parse("a | b").min_match() == 2
        assert Query.parse("a | b | c").min_match() == 2


class TestWorkload:
    def test_has_59_queries(self):
        assert len(WORKLOAD) == 59

    def test_column_count_distribution(self):
        by_q = {}
        for wq in WORKLOAD:
            by_q[wq.query.q] = by_q.get(wq.query.q, 0) + 1
        assert by_q == {1: 5, 2: 37, 3: 17}  # Table 1's composition

    def test_paper_counts_recorded(self):
        wq = query_by_id("dog breed")
        assert (wq.paper_total, wq.paper_relevant) == (68, 66)
        wq = query_by_id("us states | capitals | largest cities")
        assert (wq.paper_total, wq.paper_relevant) == (32, 30)

    def test_zero_relevant_queries_have_no_domain(self):
        for wq in WORKLOAD:
            if wq.paper_relevant == 0:
                assert wq.domain_key is None, wq.query_id

    def test_positive_relevant_queries_have_domains(self):
        for wq in WORKLOAD:
            if wq.paper_relevant > 0:
                assert wq.domain_key is not None, wq.query_id
                assert len(wq.attr_keys) == wq.query.q

    def test_query_ids_unique(self):
        ids = [wq.query_id for wq in WORKLOAD]
        assert len(set(ids)) == len(ids)

    def test_lookup_unknown_raises(self):
        with pytest.raises(KeyError):
            query_by_id("no such query")

    def test_load_workload_fresh_copy(self):
        assert [w.query_id for w in load_workload()] == [
            w.query_id for w in WORKLOAD
        ]

    def test_binding_mismatch_rejected(self):
        with pytest.raises(ValueError):
            WorkloadQuery(
                query=Query.parse("a | b"),
                domain_key="countries",
                attr_keys=("name",),  # wrong arity
                paper_total=1,
                paper_relevant=1,
            )
