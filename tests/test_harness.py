"""Tests for the experiment harness (easy/hard split, binning, methods)."""

import pytest

from repro.evaluation.harness import (
    METHODS,
    MethodRun,
    bin_queries,
    run_method,
    split_easy_hard,
)


class TestMethodRuns:
    def test_basic_runs_over_workload(self, small_env):
        run = run_method(small_env, "basic")
        assert len(run.errors) == len(small_env.queries)
        for err in run.errors.values():
            assert 0.0 <= err <= 100.0

    def test_wwt_runs_over_subset(self, small_env):
        ids = [wq.query_id for wq in small_env.queries[:4]]
        run = run_method(small_env, "wwt", query_ids=ids)
        assert set(run.errors) == set(ids)

    def test_mean_error_subset(self):
        run = MethodRun(
            method="x",
            labels={},
            errors={"a": 10.0, "b": 30.0, "c": 50.0},
        )
        assert run.mean_error() == pytest.approx(30.0)
        assert run.mean_error(["a", "b"]) == pytest.approx(20.0)
        assert run.mean_error([]) == 0.0

    def test_all_methods_registered(self):
        assert "basic" in METHODS
        assert "wwt" in METHODS
        assert "wwt-trws" in METHODS

    def test_unknown_method_raises(self, small_env):
        with pytest.raises(KeyError):
            run_method(small_env, "bogus")


class TestGrouping:
    def test_split_easy_hard(self):
        runs = {
            "a": MethodRun("a", {}, {"q1": 10.0, "q2": 50.0}),
            "b": MethodRun("b", {}, {"q1": 10.2, "q2": 20.0}),
        }
        easy, hard = split_easy_hard(runs, ["q1", "q2"])
        assert easy == ["q1"]
        assert hard == ["q2"]

    def test_bin_queries_descending_reference(self):
        errors = {f"q{i}": float(100 - i) for i in range(14)}
        groups = bin_queries(errors, list(errors), num_groups=7)
        assert len(groups) == 7
        assert all(len(g) == 2 for g in groups)
        # Group 1 holds the highest-error queries.
        assert groups[0] == ["q0", "q1"]

    def test_bin_queries_uneven(self):
        errors = {f"q{i}": float(i) for i in range(10)}
        groups = bin_queries(errors, list(errors), num_groups=7)
        assert sum(len(g) for g in groups) == 10
        assert all(groups)  # no empty group when n >= num_groups

    def test_bin_queries_empty(self):
        groups = bin_queries({}, [], num_groups=7)
        assert groups == [[] for _ in range(7)]
