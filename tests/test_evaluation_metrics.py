"""Tests for the F1 error metric and gold assignment construction."""

import pytest

from repro.core.labels import LabelSpace
from repro.corpus.groundtruth import GroundTruth, TableLabel
from repro.evaluation.metrics import count_stats, f1_error, gold_assignment
from repro.tables.table import WebTable


class TestF1Error:
    def setup_method(self):
        self.space = LabelSpace(2)

    def test_perfect_labeling(self):
        gold = {(0, 0): 0, (0, 1): 1}
        assert f1_error(dict(gold), gold, self.space) == 0.0

    def test_total_miss(self):
        gold = {(0, 0): 0, (0, 1): 1}
        pred = {(0, 0): self.space.nr, (0, 1): self.space.nr}
        assert f1_error(pred, gold, self.space) == 100.0

    def test_nothing_to_find_and_nothing_predicted(self):
        gold = {(0, 0): self.space.nr}
        pred = {(0, 0): self.space.nr}
        assert f1_error(pred, gold, self.space) == 0.0

    def test_false_positive_only(self):
        gold = {(0, 0): self.space.nr}
        pred = {(0, 0): 0}
        assert f1_error(pred, gold, self.space) == 100.0

    def test_half_recall(self):
        gold = {(0, 0): 0, (0, 1): 1}
        pred = {(0, 0): 0, (0, 1): self.space.na}
        # correct=1, pred=1, gold=2 -> F1 = 2/3 -> error 33.3%
        assert f1_error(pred, gold, self.space) == pytest.approx(100 / 3)

    def test_wrong_label_counts_against_both(self):
        gold = {(0, 0): 0}
        pred = {(0, 0): 1}
        assert f1_error(pred, gold, self.space) == 100.0

    def test_missing_prediction_defaults_nr(self):
        gold = {(0, 0): 0}
        assert f1_error({}, gold, self.space) == 100.0

    def test_na_agreement_not_rewarded(self):
        # na/na agreement contributes nothing to either denominator.
        gold = {(0, 0): 0, (0, 1): self.space.na}
        pred = {(0, 0): 0, (0, 1): self.space.na}
        assert f1_error(pred, gold, self.space) == 0.0

    def test_count_stats(self):
        gold = {(0, 0): 0, (0, 1): 1, (1, 0): self.space.nr}
        pred = {(0, 0): 0, (0, 1): self.space.na, (1, 0): 1}
        correct, n_pred, n_gold = count_stats(pred, gold, self.space)
        assert (correct, n_pred, n_gold) == (1, 2, 2)


class TestGoldAssignment:
    def test_dense_labels_from_truth(self):
        truth = GroundTruth()
        truth.set_label("q", "a", TableLabel(relevant=True, mapping={0: 1, 2: 2}))
        truth.set_label("q", "b", TableLabel(relevant=False))
        tables = [
            WebTable.from_rows([["x", "y", "z"]], table_id="a"),
            WebTable.from_rows([["x", "y"]], table_id="b"),
        ]
        space = LabelSpace(2)
        gold = gold_assignment(truth, "q", tables, space)
        assert gold[(0, 0)] == 0
        assert gold[(0, 1)] == space.na
        assert gold[(0, 2)] == 1
        assert gold[(1, 0)] == space.nr
        assert gold[(1, 1)] == space.nr

    def test_unknown_table_is_irrelevant(self):
        truth = GroundTruth()
        tables = [WebTable.from_rows([["x"]], table_id="zz")]
        space = LabelSpace(1)
        gold = gold_assignment(truth, "q", tables, space)
        assert gold[(0, 0)] == space.nr
