"""Tests for the empirical reliability estimation (Section 3.2.1)."""


from repro.core.reliability import (
    collect_part_observations,
    estimate_from_environment,
)
from repro.corpus.groundtruth import GroundTruth, TableLabel
from repro.query.model import Query, WorkloadQuery
from repro.tables.table import ContextSnippet, WebTable


def make_wq():
    return WorkloadQuery(
        query=Query.parse("nobel prize winners | year"),
        domain_key="nobel",
        attr_keys=("winner", "year"),
        paper_total=12,
        paper_relevant=10,
    )


class TestCollectObservations:
    def test_context_part_counted(self):
        # Header "Winner" + context "Nobel prize": the context part (C) has
        # the out-tokens; gold says the mapping is correct.
        table = WebTable.from_rows(
            [["Marie Curie", "1911"]],
            header=["Winners", "Year"],
            table_id="t1",
        )
        table.context.append(ContextSnippet("nobel prize laureates", 0.9))
        truth = GroundTruth()
        truth.set_label(
            "nobel prize winners | year", "t1",
            TableLabel(relevant=True, mapping={0: 1, 1: 2}),
        )
        obs = collect_part_observations(truth, make_wq(), [table])
        correct, total = obs["C"]
        assert total >= 1
        assert correct == total  # the mapping was correct

    def test_incorrect_mapping_counts_against(self):
        # Same signal but gold maps column 0 elsewhere -> counted incorrect.
        table = WebTable.from_rows(
            [["Marie Curie", "1911"]],
            header=["Winners", "Year"],
            table_id="t1",
        )
        table.context.append(ContextSnippet("nobel prize laureates", 0.9))
        truth = GroundTruth()
        truth.set_label(
            "nobel prize winners | year", "t1",
            TableLabel(relevant=True, mapping={1: 2}),  # col 0 unmapped
        )
        obs = collect_part_observations(truth, make_wq(), [table])
        correct, total = obs["C"]
        assert total >= 1
        assert correct < total

    def test_irrelevant_tables_skipped(self):
        table = WebTable.from_rows(
            [["x", "1"]], header=["Winners", "Year"], table_id="t1"
        )
        truth = GroundTruth()  # no label -> irrelevant
        obs = collect_part_observations(truth, make_wq(), [table])
        assert all(total == 0 for _c, total in obs.values())

    def test_headerless_tables_skipped(self):
        table = WebTable(
            grid=[[__import__("repro.tables.table", fromlist=["Cell"]).Cell("x"),
                   __import__("repro.tables.table", fromlist=["Cell"]).Cell("1")]],
            table_id="t1",
        )
        truth = GroundTruth()
        truth.set_label(
            "nobel prize winners | year", "t1",
            TableLabel(relevant=True, mapping={0: 1}),
        )
        obs = collect_part_observations(truth, make_wq(), [table])
        assert all(total == 0 for _c, total in obs.values())


class TestEstimateFromEnvironment:
    def test_estimates_are_probabilities(self, small_env):
        estimated = estimate_from_environment(small_env)
        for value in (
            estimated.title, estimated.context, estimated.other_header_rows,
            estimated.other_columns, estimated.body,
        ):
            assert 0.0 <= value <= 1.0

    def test_context_reliability_reasonably_high(self, small_env):
        # On a labeled workload the context part should be fairly reliable
        # (the paper estimated 0.9).
        estimated = estimate_from_environment(small_env)
        assert estimated.context >= 0.5
