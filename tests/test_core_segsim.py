"""Tests for the segmented similarity (SegSim / Cover, Section 3.2)."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.segsim import (
    DEFAULT_RELIABILITIES,
    Reliabilities,
    TablePartIndex,
    estimate_reliabilities,
    segmented_similarity,
    unsegmented_similarity,
)
from repro.tables.table import Cell, CellFormat, ContextSnippet, WebTable
from repro.text.tfidf import TermStatistics
from repro.text.tokenize import tokenize


def table(header=None, rows=(), context="", title="", header_rows=None):
    grid = []
    n_header = 0
    if header_rows is not None:
        for hr in header_rows:
            grid.append([Cell(h, CellFormat(is_th=True)) for h in hr])
            n_header += 1
    elif header is not None:
        grid.append([Cell(h, CellFormat(is_th=True)) for h in header])
        n_header = 1
    width = len(grid[0]) if grid else len(rows[0])
    n_title = 0
    if title:
        grid.insert(0, [Cell(title, CellFormat(bold=True))] + [Cell()] * (width - 1))
        n_title = 1
    for row in rows:
        grid.append([Cell(v) for v in row])
    ctx = [ContextSnippet(context, 0.9)] if context else []
    return WebTable(
        grid=grid, num_title_rows=n_title, num_header_rows=n_header,
        context=ctx, table_id="t",
    )


class TestSegSimBasics:
    def test_exact_header_match_is_one(self):
        t = table(header=["Country", "Currency"], rows=[["France", "Euro"]])
        idx = TablePartIndex(t)
        scores = segmented_similarity(tokenize("country"), idx, 0)
        assert math.isclose(scores.segsim, 1.0)
        assert math.isclose(scores.cover, 1.0)

    def test_no_header_table_scores_zero(self):
        t = WebTable(grid=[[Cell("France"), Cell("Euro")]], num_header_rows=0)
        idx = TablePartIndex(t)
        scores = segmented_similarity(tokenize("country"), idx, 0)
        assert scores.segsim == 0.0 and scores.cover == 0.0

    def test_disjoint_header_scores_zero(self):
        t = table(header=["Movie", "Year"], rows=[["Alien", "1979"]])
        idx = TablePartIndex(t)
        scores = segmented_similarity(tokenize("country"), idx, 0)
        assert scores.segsim == 0.0

    def test_split_header_context_case(self):
        # The paper's "Nobel prize winner" case: header has only "winner",
        # context has "Nobel prize".
        t = table(
            header=["Winner", "Year"],
            rows=[["Marie Curie", "1911"]],
            context="Nobel prize laureates by year",
        )
        idx = TablePartIndex(t)
        scores = segmented_similarity(tokenize("nobel prize winners"), idx, 0)
        # "winner" pins the header; "nobel prize" matches context (p=0.9).
        assert scores.segsim > 0.85

    def test_context_match_requires_header_overlap(self):
        # Without any header overlap the query cannot pin a column, even if
        # the context matches fully.
        t = table(
            header=["Item", "Year"],
            rows=[["x", "2001"]],
            context="nobel prize winners",
        )
        idx = TablePartIndex(t)
        scores = segmented_similarity(tokenize("nobel prize winners"), idx, 0)
        assert scores.segsim == 0.0

    def test_multi_row_header_concatenation(self):
        # Split header "Main areas" / "explored" (Figure 1, Table 1).
        t = table(
            header_rows=[["Name", "Main areas"], ["", "explored"]],
            rows=[["Tasman", "Oceania"]],
        )
        idx = TablePartIndex(t)
        scores = segmented_similarity(tokenize("areas explored"), idx, 1)
        # "areas" in row 0, "explored" in row 1 of the same column (Hc part,
        # reliability 0.5) or vice versa.
        assert scores.segsim > 0.5

    def test_junk_second_header_row_not_penalized(self):
        # Figure 1, Table 2: "(Chronological order)" under "Exploration"
        # must not dilute the first row's match.
        good = table(header=["Exploration"], rows=[["Oceania"]])
        noisy = table(
            header_rows=[["Exploration"], ["(Chronological order)"]],
            rows=[["Oceania"]],
        )
        q = tokenize("exploration")
        s_good = segmented_similarity(q, TablePartIndex(good), 0)
        s_noisy = segmented_similarity(q, TablePartIndex(noisy), 0)
        assert math.isclose(s_good.segsim, s_noisy.segsim)
        assert math.isclose(s_noisy.segsim, 1.0)

    def test_body_evidence(self):
        # "Black metal bands": genre column body holds "Black metal".
        t = table(
            header=["Band name", "Country", "Genre"],
            rows=[
                ["Darkfall", "Norway", "Black metal"],
                ["Emberwood", "Sweden", "Black metal"],
                ["Ironveil", "Finland", "Death metal"],
            ],
        )
        idx = TablePartIndex(t)
        scores = segmented_similarity(tokenize("black metal bands"), idx, 0)
        # "bands" pins the header; "black metal" found in body (p_B = 0.8).
        assert scores.segsim > 0.5

    def test_other_column_header_evidence(self):
        # "dog breeds" matching a table with adjacent "dog" and "breed"
        # columns: the other column's header is the Hr part (p = 1.0).
        t = table(header=["Dog", "Breed"], rows=[["Rex", "Boxer"]])
        idx = TablePartIndex(t)
        scores = segmented_similarity(tokenize("dog breeds"), idx, 0)
        assert scores.segsim > 0.9

    def test_title_evidence(self):
        t = table(
            header=["Name", "Area"],
            rows=[["Shakespeare Hills", "2236"]],
            title="Forest reserves",
        )
        idx = TablePartIndex(t)
        scores = segmented_similarity(tokenize("forest reserves name"), idx, 0)
        assert scores.segsim > 0.9  # "name" in header, rest in title (p=1.0)


class TestSegSimProperties:
    @given(st.lists(st.sampled_from(["country", "currency", "gdp", "year", "rate"]),
                    min_size=1, max_size=4))
    @settings(max_examples=40, deadline=None)
    def test_bounded(self, query_tokens):
        t = table(
            header=["Country", "Currency"],
            rows=[["France", "Euro"], ["Japan", "Yen"]],
            context="currency rate by country",
        )
        idx = TablePartIndex(t)
        for col in (0, 1):
            s = segmented_similarity(query_tokens, idx, col)
            assert 0.0 <= s.segsim <= 1.0 + 1e-9
            assert 0.0 <= s.cover <= 1.0 + 1e-9

    def test_segmented_at_least_unsegmented_on_split_case(self):
        t = table(
            header=["Winner"],
            rows=[["Marie Curie"]],
            context="Nobel prize ceremony",
        )
        idx = TablePartIndex(t)
        q = tokenize("nobel prize winner")
        seg = segmented_similarity(q, idx, 0)
        unseg = unsegmented_similarity(q, idx, 0)
        assert seg.segsim > unseg.segsim

    def test_unsegmented_full_match(self):
        t = table(header=["Country name"], rows=[["France"]])
        idx = TablePartIndex(t)
        s = unsegmented_similarity(tokenize("country name"), idx, 0)
        assert math.isclose(s.segsim, 1.0)
        assert math.isclose(s.cover, 1.0)

    def test_stats_change_weighting(self):
        stats = TermStatistics()
        for _ in range(50):
            stats.add_document(["name"])
        stats.add_document(["country", "name"])
        t = table(header=["Country"], rows=[["France"]])
        idx = TablePartIndex(t, stats)
        # "country" is rare -> matching it should dominate the query norm.
        s = segmented_similarity(tokenize("country name"), idx, 0, stats)
        assert s.cover > 0.8

    def test_empty_query(self):
        t = table(header=["Country"], rows=[["France"]])
        idx = TablePartIndex(t)
        s = segmented_similarity([], idx, 0)
        assert s.segsim == 0.0 and s.cover == 0.0


class TestReliabilities:
    def test_defaults_match_paper(self):
        r = DEFAULT_RELIABILITIES
        assert (r.title, r.context, r.other_header_rows, r.other_columns, r.body) == (
            1.0, 0.9, 0.5, 1.0, 0.8,
        )

    def test_estimation(self):
        estimated = estimate_reliabilities(
            {"T": (9, 10), "C": (8, 10), "Hc": (1, 2), "Hr": (5, 5), "B": (4, 5)}
        )
        assert math.isclose(estimated.title, 0.9)
        assert math.isclose(estimated.context, 0.8)
        assert math.isclose(estimated.other_header_rows, 0.5)
        assert math.isclose(estimated.other_columns, 1.0)
        assert math.isclose(estimated.body, 0.8)

    def test_estimation_defaults_for_missing(self):
        estimated = estimate_reliabilities({})
        assert estimated == DEFAULT_RELIABILITIES

    def test_part_lookup(self):
        r = Reliabilities()
        assert r.of("T") == 1.0
        assert r.of("B") == 0.8
