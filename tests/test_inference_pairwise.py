"""Tests for the pairwise-energy lowering used by α-expansion / BP / TRW-S."""

import pytest

from repro.inference.pairwise import BIG, build_pairwise_model

from .conftest import make_problem


def two_table_problem(nsim=0.5):
    return make_problem(
        "a | b",
        [2, 2],
        {
            (0, 0): [2.0, -0.3, 0.0, 0.1],
            (0, 1): [-0.3, 2.0, 0.0, 0.1],
            (1, 0): [0.5, -0.3, 0.0, 0.4],
            (1, 1): [-0.3, 0.5, 0.0, 0.4],
        },
        edges=[((0, 0), (1, 0), nsim)],
    )


class TestPairwiseModel:
    def test_unary_is_negated_potential(self):
        problem = two_table_problem()
        model = build_pairwise_model(problem, include_mutex_edges=True)
        node = model.node_id[(0, 0)]
        assert model.unary[node][0] == pytest.approx(-2.0)
        assert model.unary[node][problem.labels.nr] == pytest.approx(-0.1)

    def test_potts_energy_rewards_agreement(self):
        problem = two_table_problem()
        model = build_pairwise_model(problem, include_mutex_edges=False)
        potts = [t for t in model.terms if t.kind == "potts"]
        assert potts, "expected a potts term from the confident edge"
        term = potts[0]
        nr = problem.labels.nr
        assert model.pair_energy(term, 0, 0) < 0  # agreement rewarded
        assert model.pair_energy(term, 0, 1) == 0.0
        assert model.pair_energy(term, nr, nr) == 0.0  # nr excluded (Eq. 4)

    def test_allirr_energy(self):
        problem = two_table_problem()
        model = build_pairwise_model(problem, include_mutex_edges=False)
        allirr = [t for t in model.terms if t.kind == "allirr"]
        assert len(allirr) == 2  # one per table (2 columns each)
        term = allirr[0]
        nr = problem.labels.nr
        assert model.pair_energy(term, nr, 0) == BIG
        assert model.pair_energy(term, 0, nr) == BIG
        assert model.pair_energy(term, nr, nr) == 0.0
        assert model.pair_energy(term, 0, 1) == 0.0

    def test_mutex_energy_only_when_requested(self):
        problem = two_table_problem()
        without = build_pairwise_model(problem, include_mutex_edges=False)
        with_mutex = build_pairwise_model(problem, include_mutex_edges=True)
        assert not [t for t in without.terms if t.kind == "mutex"]
        mutex = [t for t in with_mutex.terms if t.kind == "mutex"]
        assert mutex
        term = mutex[0]
        assert with_mutex.pair_energy(term, 0, 0) == BIG
        assert with_mutex.pair_energy(term, 1, 1) == BIG
        na = problem.labels.na
        assert with_mutex.pair_energy(term, na, na) == 0.0

    def test_energy_of_labeling(self):
        problem = two_table_problem()
        model = build_pairwise_model(problem, include_mutex_edges=False)
        # All-na labeling: zero na unaries plus the potts reward for na=na
        # agreement on confident edges (Eq. 4 excludes only nr).
        na = problem.labels.na
        labeling = [na] * len(model.nodes)
        potts_reward = sum(
            model.pair_energy(t, na, na)
            for t in model.terms
            if t.kind == "potts"
        )
        assert model.energy(labeling) == pytest.approx(potts_reward)
        assert potts_reward <= 0.0

    def test_to_assignment_roundtrip(self):
        problem = two_table_problem()
        model = build_pairwise_model(problem, include_mutex_edges=False)
        labeling = [0, 1, 0, 1]
        assignment = model.to_assignment(labeling)
        assert assignment[(0, 0)] == 0
        assert assignment[(1, 1)] == 1

    def test_unconfident_edges_dropped(self):
        # Flat potentials -> no confident endpoint -> no potts terms.
        problem = make_problem(
            "a",
            [1, 1],
            {(0, 0): [0.01, 0.0, 0.01], (1, 0): [0.01, 0.0, 0.01]},
            edges=[((0, 0), (1, 0), 0.9)],
        )
        model = build_pairwise_model(problem, include_mutex_edges=False)
        assert not [t for t in model.terms if t.kind == "potts"]
