"""Unit tests for the inverted index, table store, and corpus builder."""

import json

import pytest

from repro.index import InvertedIndex, TableStore, build_corpus_index
from repro.tables.table import WebTable


def make_index():
    idx = InvertedIndex()
    idx.add_text_document(
        "d1", {"header": "name country", "context": "mountains list", "content": "denali usa"}
    )
    idx.add_text_document(
        "d2", {"header": "name height", "context": "mountains", "content": "logan canada"}
    )
    idx.add_text_document(
        "d3", {"header": "movie year", "context": "films", "content": "alien 1979"}
    )
    return idx


class TestInvertedIndex:
    def test_search_finds_matching_docs(self):
        # Search terms are pre-analyzed tokens (the analyzer stems plurals).
        hits = make_index().search(["mountain"])
        assert {h.doc_id for h in hits} == {"d1", "d2"}

    def test_search_ranks_by_score(self):
        hits = make_index().search(["mountains", "country"])
        assert hits[0].doc_id == "d1"  # matches in two fields

    def test_header_boost_beats_content(self):
        idx = InvertedIndex()
        idx.add_text_document("h", {"header": "winner", "context": "", "content": "x y"})
        idx.add_text_document("c", {"header": "a b", "context": "", "content": "winner"})
        hits = idx.search(["winner"])
        assert hits[0].doc_id == "h"

    def test_limit_respected(self):
        hits = make_index().search(["name"], limit=1)
        assert len(hits) == 1

    def test_duplicate_doc_id_rejected(self):
        idx = make_index()
        with pytest.raises(ValueError):
            idx.add_text_document("d1", {"header": "x"})

    def test_empty_index_search(self):
        assert InvertedIndex().search(["x"]) == []

    def test_document_frequency_across_fields(self):
        idx = make_index()
        assert idx.document_frequency("mountain") == 2
        assert idx.document_frequency("denali") == 1
        assert idx.document_frequency("absent") == 0

    def test_docs_containing_all_conjunctive(self):
        idx = make_index()
        assert idx.docs_containing_all(["name", "country"], ["header"]) == {"d1"}
        assert idx.docs_containing_all(["name"], ["header"]) == {"d1", "d2"}
        assert idx.docs_containing_all([], ["header"]) == set()
        assert idx.docs_containing_all(["name", "alien"], ["header"]) == set()

    def test_docs_containing_all_field_scoping(self):
        idx = make_index()
        assert idx.docs_containing_all(["denali"], ["header", "context"]) == set()
        assert idx.docs_containing_all(["denali"], ["content"]) == {"d1"}

    def test_term_statistics_export(self):
        stats = make_index().term_statistics()
        assert stats.num_docs == 3
        assert stats.document_frequency("mountain") == 2

    def test_deterministic_tie_break(self):
        idx = InvertedIndex()
        idx.add_text_document("b", {"header": "same", "context": "", "content": ""})
        idx.add_text_document("a", {"header": "same", "context": "", "content": ""})
        hits = idx.search(["same"])
        assert [h.doc_id for h in hits] == ["a", "b"]


class TestTableStore:
    def test_add_get_roundtrip(self, tmp_path):
        t1 = WebTable.from_rows([["a", "1"]], header=["n", "v"], table_id="x1")
        t2 = WebTable.from_rows([["b", "2"]], header=["n", "v"], table_id="x2")
        store = TableStore([t1, t2])
        assert len(store) == 2
        assert store.get("x1").column_values(0) == ["a"]

        path = tmp_path / "tables.jsonl"
        store.save(path)
        loaded = TableStore.load(path)
        assert len(loaded) == 2
        assert loaded.get("x2").column_values(1) == ["2"]

    def test_duplicate_id_rejected(self):
        t = WebTable.from_rows([["a"]], table_id="dup")
        store = TableStore([t])
        with pytest.raises(ValueError):
            store.add(WebTable.from_rows([["b"]], table_id="dup"))

    def test_missing_id_rejected(self):
        with pytest.raises(ValueError):
            TableStore([WebTable.from_rows([["a"]])])

    def test_get_many_preserves_order(self):
        tables = [
            WebTable.from_rows([[str(i)]], table_id=f"t{i}") for i in range(3)
        ]
        store = TableStore(tables)
        got = store.get_many(["t2", "t0", "zz"])
        assert [t.table_id for t in got] == ["t2", "t0"]

    def test_save_load_preserves_insertion_order(self, tmp_path):
        # Deliberately non-sorted ids: order must come from insertion, not
        # from any sorting in the persistence layer.
        ids = ["z9", "a1", "m5", "b2"]
        store = TableStore(
            WebTable.from_rows([["x"]], table_id=i) for i in ids
        )
        path = tmp_path / "ordered.jsonl"
        store.save(path)
        assert TableStore.load(path).ids() == ids

    def test_load_rejects_duplicate_id_with_line_number(self, tmp_path):
        line = json.dumps(
            WebTable.from_rows([["a"]], table_id="dup").to_dict()
        )
        path = tmp_path / "dup.jsonl"
        path.write_text(line + "\n\n" + line + "\n", encoding="utf-8")
        with pytest.raises(ValueError, match=r"dup\.jsonl:3: duplicate table id 'dup'"):
            TableStore.load(path)

    def test_load_rejects_corrupt_json_with_line_number(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("{not json\n", encoding="utf-8")
        with pytest.raises(ValueError, match=r"bad\.jsonl:1: invalid table JSON"):
            TableStore.load(path)


class TestBuildCorpusIndex:
    def test_build_and_search(self):
        tables = [
            WebTable.from_rows(
                [["Denali", "6190"]], header=["Mountain", "Height"], table_id="m1"
            ),
            WebTable.from_rows(
                [["Alien", "1979"]], header=["Movie", "Year"], table_id="f1"
            ),
        ]
        corpus = build_corpus_index(tables)
        assert corpus.num_tables == 2
        hits = corpus.index.search(["mountain"])
        assert [h.doc_id for h in hits] == ["m1"]
        assert corpus.stats.num_docs == 2
        assert corpus.store.get("m1").column_values(0) == ["Denali"]
