"""Unit tests for the inverted index, table store, and corpus builder."""

import json

import pytest

from repro.index import InvertedIndex, TableStore, build_corpus_index
from repro.index.store import (
    LazyTableStore,
    TABLES_OFFSETS_FILE,
    read_offsets_sidecar,
    scan_line_offsets,
    write_offsets_sidecar,
)
from repro.tables.table import WebTable


def make_index():
    idx = InvertedIndex()
    idx.add_text_document(
        "d1", {"header": "name country", "context": "mountains list", "content": "denali usa"}
    )
    idx.add_text_document(
        "d2", {"header": "name height", "context": "mountains", "content": "logan canada"}
    )
    idx.add_text_document(
        "d3", {"header": "movie year", "context": "films", "content": "alien 1979"}
    )
    return idx


class TestInvertedIndex:
    def test_search_finds_matching_docs(self):
        # Search terms are pre-analyzed tokens (the analyzer stems plurals).
        hits = make_index().search(["mountain"])
        assert {h.doc_id for h in hits} == {"d1", "d2"}

    def test_search_ranks_by_score(self):
        hits = make_index().search(["mountains", "country"])
        assert hits[0].doc_id == "d1"  # matches in two fields

    def test_header_boost_beats_content(self):
        idx = InvertedIndex()
        idx.add_text_document("h", {"header": "winner", "context": "", "content": "x y"})
        idx.add_text_document("c", {"header": "a b", "context": "", "content": "winner"})
        hits = idx.search(["winner"])
        assert hits[0].doc_id == "h"

    def test_limit_respected(self):
        hits = make_index().search(["name"], limit=1)
        assert len(hits) == 1

    def test_duplicate_doc_id_rejected(self):
        idx = make_index()
        with pytest.raises(ValueError):
            idx.add_text_document("d1", {"header": "x"})

    def test_empty_index_search(self):
        assert InvertedIndex().search(["x"]) == []

    def test_document_frequency_across_fields(self):
        idx = make_index()
        assert idx.document_frequency("mountain") == 2
        assert idx.document_frequency("denali") == 1
        assert idx.document_frequency("absent") == 0

    def test_docs_containing_all_conjunctive(self):
        idx = make_index()
        assert idx.docs_containing_all(["name", "country"], ["header"]) == {"d1"}
        assert idx.docs_containing_all(["name"], ["header"]) == {"d1", "d2"}
        assert idx.docs_containing_all([], ["header"]) == set()
        assert idx.docs_containing_all(["name", "alien"], ["header"]) == set()

    def test_docs_containing_all_field_scoping(self):
        idx = make_index()
        assert idx.docs_containing_all(["denali"], ["header", "context"]) == set()
        assert idx.docs_containing_all(["denali"], ["content"]) == {"d1"}

    def test_term_statistics_export(self):
        stats = make_index().term_statistics()
        assert stats.num_docs == 3
        assert stats.document_frequency("mountain") == 2

    def test_deterministic_tie_break(self):
        idx = InvertedIndex()
        idx.add_text_document("b", {"header": "same", "context": "", "content": ""})
        idx.add_text_document("a", {"header": "same", "context": "", "content": ""})
        hits = idx.search(["same"])
        assert [h.doc_id for h in hits] == ["a", "b"]


class TestTableStore:
    def test_add_get_roundtrip(self, tmp_path):
        t1 = WebTable.from_rows([["a", "1"]], header=["n", "v"], table_id="x1")
        t2 = WebTable.from_rows([["b", "2"]], header=["n", "v"], table_id="x2")
        store = TableStore([t1, t2])
        assert len(store) == 2
        assert store.get("x1").column_values(0) == ["a"]

        path = tmp_path / "tables.jsonl"
        store.save(path)
        loaded = TableStore.load(path)
        assert len(loaded) == 2
        assert loaded.get("x2").column_values(1) == ["2"]

    def test_duplicate_id_rejected(self):
        t = WebTable.from_rows([["a"]], table_id="dup")
        store = TableStore([t])
        with pytest.raises(ValueError):
            store.add(WebTable.from_rows([["b"]], table_id="dup"))

    def test_missing_id_rejected(self):
        with pytest.raises(ValueError):
            TableStore([WebTable.from_rows([["a"]])])

    def test_get_many_preserves_order(self):
        tables = [
            WebTable.from_rows([[str(i)]], table_id=f"t{i}") for i in range(3)
        ]
        store = TableStore(tables)
        got = store.get_many(["t2", "t0", "zz"])
        assert [t.table_id for t in got] == ["t2", "t0"]

    def test_save_load_preserves_insertion_order(self, tmp_path):
        # Deliberately non-sorted ids: order must come from insertion, not
        # from any sorting in the persistence layer.
        ids = ["z9", "a1", "m5", "b2"]
        store = TableStore(
            WebTable.from_rows([["x"]], table_id=i) for i in ids
        )
        path = tmp_path / "ordered.jsonl"
        store.save(path)
        assert TableStore.load(path).ids() == ids

    def test_load_rejects_duplicate_id_with_line_number(self, tmp_path):
        line = json.dumps(
            WebTable.from_rows([["a"]], table_id="dup").to_dict()
        )
        path = tmp_path / "dup.jsonl"
        path.write_text(line + "\n\n" + line + "\n", encoding="utf-8")
        with pytest.raises(ValueError, match=r"dup\.jsonl:3: duplicate table id 'dup'"):
            TableStore.load(path)

    def test_load_rejects_corrupt_json_with_line_number(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("{not json\n", encoding="utf-8")
        with pytest.raises(ValueError, match=r"bad\.jsonl:1: invalid table JSON"):
            TableStore.load(path)


def lazy_fixture_tables(n=4):
    return [
        WebTable.from_rows(
            [[f"val{i}", str(i)]], header=["name", "rank"], table_id=f"t{i}"
        )
        for i in range(n)
    ]


def write_tables_file(tmp_path, tables, name="tables.jsonl"):
    path = tmp_path / name
    TableStore(tables).save(path)
    return path


class TestOffsetsSidecar:
    def test_sidecar_round_trips_the_scan(self, tmp_path):
        path = write_tables_file(tmp_path, lazy_fixture_tables())
        scanned = scan_line_offsets(path)
        sidecar = write_offsets_sidecar(path)
        assert sidecar == tmp_path / TABLES_OFFSETS_FILE
        loaded = read_offsets_sidecar(
            sidecar, expected_rows=4, data_size=path.stat().st_size
        )
        assert loaded == scanned

    def test_scan_skips_blank_lines(self, tmp_path):
        path = write_tables_file(tmp_path, lazy_fixture_tables(2))
        raw = path.read_bytes()
        first, second = raw.splitlines(keepends=True)
        path.write_bytes(first + b"\n\n" + second)
        offsets = scan_line_offsets(path)
        assert len(offsets) == 3  # two rows + end mark, blanks ignored
        data = path.read_bytes()
        assert data[offsets[1]:offsets[2]].strip() == second.strip()

    def test_scan_of_empty_file(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_bytes(b"")
        assert scan_line_offsets(path) == [0]

    def test_missing_sidecar_means_scan_instead(self, tmp_path):
        assert read_offsets_sidecar(tmp_path / "nope", 1, 10) is None

    def test_corrupt_sidecar_is_rejected(self, tmp_path):
        path = write_tables_file(tmp_path, lazy_fixture_tables())
        sidecar = write_offsets_sidecar(path)
        size = path.stat().st_size
        good = sidecar.read_bytes()

        flipped = bytearray(good)
        flipped[-6] ^= 0xFF  # corrupt an offset byte: CRC must catch it
        sidecar.write_bytes(bytes(flipped))
        assert read_offsets_sidecar(sidecar, 4, size) is None

        sidecar.write_bytes(good[: len(good) // 2])  # truncated
        assert read_offsets_sidecar(sidecar, 4, size) is None

        sidecar.write_bytes(b"XXXX\x00\x01" + good[6:])  # wrong magic
        assert read_offsets_sidecar(sidecar, 4, size) is None

    def test_stale_sidecar_is_rejected(self, tmp_path):
        path = write_tables_file(tmp_path, lazy_fixture_tables())
        sidecar = write_offsets_sidecar(path)
        size = path.stat().st_size
        # Row-count disagreement (index snapshot grew).
        assert read_offsets_sidecar(sidecar, 5, size) is None
        # Data-size disagreement (tables file was rewritten).
        assert read_offsets_sidecar(sidecar, 4, size + 1) is None


class TestLazyTableStore:
    def open_lazy(self, tmp_path, tables=None, sidecar=True):
        tables = lazy_fixture_tables() if tables is None else tables
        path = write_tables_file(tmp_path, tables)
        if sidecar:
            write_offsets_sidecar(path)
        return LazyTableStore.open(path, [t.table_id for t in tables]), path

    def test_open_get_matches_eager(self, tmp_path):
        tables = lazy_fixture_tables()
        store, _ = self.open_lazy(tmp_path, tables)
        assert len(store) == len(tables)
        assert store.ids() == [t.table_id for t in tables]
        for t in tables:
            assert store.get(t.table_id).to_dict() == t.to_dict()
        store.close()

    def test_rows_parse_lazily_and_cache(self, tmp_path):
        store, _ = self.open_lazy(tmp_path)
        assert store._tables == {}  # nothing parsed at open
        first = store.get("t2")
        assert set(store._tables) == {"t2"}  # only the touched row
        assert store.get("t2") is first  # cached, not re-parsed
        store.close()

    def test_open_without_sidecar_scans(self, tmp_path):
        store, path = self.open_lazy(tmp_path, sidecar=False)
        assert not (path.parent / TABLES_OFFSETS_FILE).exists()
        assert store.get("t0").column_values(0) == ["val0"]
        store.close()

    def test_corrupt_sidecar_falls_back_to_scan(self, tmp_path):
        tables = lazy_fixture_tables()
        path = write_tables_file(tmp_path, tables)
        (path.parent / TABLES_OFFSETS_FILE).write_bytes(b"garbage")
        store = LazyTableStore.open(path, [t.table_id for t in tables])
        assert [t.table_id for t in store] == [t.table_id for t in tables]
        store.close()

    def test_row_count_mismatch_rejected_at_open(self, tmp_path):
        tables = lazy_fixture_tables()
        path = write_tables_file(tmp_path, tables)
        with pytest.raises(ValueError, match="table store holds"):
            LazyTableStore.open(path, [t.table_id for t in tables] + ["t9"])

    def test_duplicate_row_ids_rejected_at_open(self, tmp_path):
        path = write_tables_file(tmp_path, lazy_fixture_tables(2))
        with pytest.raises(ValueError, match="duplicate table ids"):
            LazyTableStore.open(path, ["t0", "t0"])

    def test_id_mismatch_surfaces_at_first_read(self, tmp_path):
        tables = lazy_fixture_tables(2)
        path = write_tables_file(tmp_path, tables)
        store = LazyTableStore.open(path, ["t0", "WRONG"])
        assert store.get("t0").table_id == "t0"  # the honest row is fine
        with pytest.raises(ValueError, match=r":2: row holds table id 't1'"):
            store.get("WRONG")
        store.close()

    def test_mutation_surface(self, tmp_path):
        store, _ = self.open_lazy(tmp_path)
        with pytest.raises(ValueError, match="duplicate table id 't1'"):
            store.add(WebTable.from_rows([["x"]], table_id="t1"))

        extra = WebTable.from_rows([["e"]], table_id="e1")
        store.add(extra)
        assert "e1" in store and len(store) == 5
        assert store.ids() == ["t0", "t1", "t2", "t3", "e1"]

        removed = store.remove("t1")
        assert removed.table_id == "t1"
        assert "t1" not in store and len(store) == 4
        with pytest.raises(KeyError):
            store.get("t1")
        with pytest.raises(KeyError):
            store.remove("t1")

        # A removed on-disk id can be re-added (journal compaction path).
        store.add(WebTable.from_rows([["new"]], table_id="t1"))
        assert store.get("t1").column_values(0) == ["new"]
        assert store.ids() == ["t0", "t2", "t3", "e1", "t1"]
        store.close()

    def test_get_many_preserves_order_skips_unknown(self, tmp_path):
        store, _ = self.open_lazy(tmp_path)
        got = store.get_many(["t3", "t0", "zz"])
        assert [t.table_id for t in got] == ["t3", "t0"]
        store.close()

    def test_save_is_byte_identical_to_source(self, tmp_path):
        store, path = self.open_lazy(tmp_path)
        out = tmp_path / "copy.jsonl"
        store.save(out)
        assert out.read_bytes() == path.read_bytes()
        store.close()

    def test_save_over_own_backing_file_is_safe(self, tmp_path):
        store, path = self.open_lazy(tmp_path)
        store.remove("t0")
        store.add(WebTable.from_rows([["e"]], table_id="e1"))
        store.save(path)  # bytes gathered before the target opens
        store.close()
        reloaded = TableStore.load(path)
        assert reloaded.ids() == ["t1", "t2", "t3", "e1"]

    def test_close_is_idempotent_and_keeps_parsed_rows(self, tmp_path):
        store, _ = self.open_lazy(tmp_path)
        cached = store.get("t0")
        store.close()
        store.close()
        assert store.get("t0") is cached  # cache survives the mmap


class TestBuildCorpusIndex:
    def test_build_and_search(self):
        tables = [
            WebTable.from_rows(
                [["Denali", "6190"]], header=["Mountain", "Height"], table_id="m1"
            ),
            WebTable.from_rows(
                [["Alien", "1979"]], header=["Movie", "Year"], table_id="f1"
            ),
        ]
        corpus = build_corpus_index(tables)
        assert corpus.num_tables == 2
        hits = corpus.index.search(["mountain"])
        assert [h.doc_id for h in hits] == ["m1"]
        assert corpus.stats.num_docs == 2
        assert corpus.store.get("m1").column_values(0) == ["Denali"]
