"""Process-parallel scatter-gather: identity, lifecycle, IPC contracts.

The acceptance bar for ``parallel_mode="process"`` is bit-identity: the
same hits, scores, and field scores as the serial scatter over the same
corpus, because document frequencies are summed corpus-globally in the
parent and shipped to workers as explicit idf floats (two-phase scatter
— see DESIGN.md, "Process-parallel scatter-gather").  The lifecycle
tests prove the self-healing story end-to-end with *real* process
death: SIGKILL the workers, observe an accurately-degraded answer, heal
past the reopen window, observe a respawned pool and identical hits.
"""

import os
import pickle
import signal
import time

import pytest

from repro.faults import FaultRule, Once, injected
from repro.faults.health import HealthPolicy
from repro.faults.injection import (
    POINT_SHARD_WORKER,
    InjectedFault,
)
from repro.index import ShardedCorpus, build_sharded_corpus, load_corpus
from repro.index.procpool import ProcessScatterPool
from repro.index.sharded import PARALLEL_MODES

NUM_SHARDS = 4


class FakeClock:
    def __init__(self, now=0.0):
        self.now = now

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


@pytest.fixture(scope="module")
def corpus_dir(small_env, tmp_path_factory):
    """A persisted 4-shard corpus (v3 binary) for workers to mmap."""
    tables = list(small_env.synthetic.corpus.store)
    built = build_sharded_corpus(tables, NUM_SHARDS)
    path = tmp_path_factory.mktemp("procpool") / "corpus"
    built.save(path)
    return path


@pytest.fixture(scope="module")
def serial(corpus_dir):
    corpus = ShardedCorpus.load(corpus_dir, parallel_mode="serial")
    yield corpus
    corpus.close()


@pytest.fixture(scope="module")
def process(corpus_dir):
    corpus = ShardedCorpus.load(
        corpus_dir, probe_workers=2, parallel_mode="process"
    )
    yield corpus
    corpus.close()


def hit_view(hits):
    return [(h.doc_id, h.score, h.field_scores) for h in hits]


class TestBitIdentity:
    """Process scatter must be indistinguishable from serial, bit for bit."""

    def test_search_identity_multi_term(self, serial, process):
        terms = ["country", "currency"]
        assert hit_view(process.search(terms, limit=25)) == hit_view(
            serial.search(terms, limit=25)
        )

    def test_search_identity_with_field_scores(self, serial, process):
        hits_s = serial.search(["country"], limit=10, with_field_scores=True)
        hits_p = process.search(["country"], limit=10, with_field_scores=True)
        assert hit_view(hits_p) == hit_view(hits_s)
        assert all(h.field_scores for h in hits_p)

    def test_docs_containing_all_identity(self, serial, process):
        assert process.docs_containing_all(
            ["country"], fields=["header"]
        ) == serial.docs_containing_all(["country"], fields=["header"])

    def test_global_idf_identity(self, serial, process):
        for term in ("country", "currency", "rate", "zzz-absent"):
            assert process.global_idf(term) == serial.global_idf(term)

    def test_repr_names_the_mode(self, process):
        assert "mode=process" in repr(process)


class TestConstructionContracts:
    def test_modes_catalog(self):
        assert PARALLEL_MODES == ("serial", "thread", "process")

    def test_unknown_mode_rejected(self, serial):
        with pytest.raises(ValueError, match="parallel_mode"):
            ShardedCorpus(
                serial.shards, serial.stats,
                validate=False, parallel_mode="gpu",
            )

    def test_process_mode_needs_persisted_corpus(self, serial):
        with pytest.raises(ValueError, match="persisted corpus"):
            ShardedCorpus(
                serial.shards, serial.stats,
                validate=False, parallel_mode="process",
            )

    def test_load_corpus_threads_the_mode(self, corpus_dir):
        with load_corpus(
            corpus_dir, mutable=True, probe_workers=2,
            parallel_mode="process",
        ) as corpus:
            hits = corpus.search(["country"], limit=5)
            assert hits


class TestWorkerLifecycle:
    """Real worker death: degrade accurately, then heal by respawning."""

    def test_kill_degrade_reopen_respawn(self, corpus_dir, serial):
        clock = FakeClock()
        policy = HealthPolicy(
            max_retries=1, backoff_s=1.0, backoff_factor=1.0,
            max_backoff_s=1.0, reopen_after_s=2.0,
        )
        corpus = ShardedCorpus.load(
            corpus_dir, probe_workers=2, parallel_mode="process",
            health=policy, clock=clock,
        )
        try:
            baseline = hit_view(corpus.search(["country"], limit=10))
            assert baseline == hit_view(serial.search(["country"], limit=10))
            pool = corpus._procpool
            spawns_before = pool.spawns
            pids = pool.worker_pids()
            assert pids, "pool should expose live worker pids"
            for pid in pids:
                os.kill(pid, signal.SIGKILL)
            time.sleep(0.2)

            degraded_hits = corpus.search(["country"], limit=10)
            coverage = corpus.coverage()
            assert not coverage.complete
            assert coverage.shards_reachable < NUM_SHARDS
            assert 0.0 <= coverage.fraction < 1.0
            # A partial answer never invents documents: every hit exists
            # in the fault-free result set (unbounded, since losing a
            # shard promotes lower-ranked docs into a truncated top-k).
            assert set(h.doc_id for h in degraded_hits) <= set(
                h.doc_id for h in serial.search(["country"], limit=1000)
            )

            clock.advance(10.0)
            healed = hit_view(corpus.search(["country"], limit=10))
            assert corpus.coverage().complete
            assert healed == baseline
            assert pool.spawns > spawns_before
        finally:
            corpus.close()

    def test_close_then_reuse_respawns(self, corpus_dir, serial):
        corpus = ShardedCorpus.load(
            corpus_dir, probe_workers=2, parallel_mode="process"
        )
        try:
            before = hit_view(corpus.search(["currency"], limit=5))
            corpus._procpool.close()
            after = hit_view(corpus.search(["currency"], limit=5))
            assert before == after == hit_view(
                serial.search(["currency"], limit=5)
            )
        finally:
            corpus.close()


class TestFaultIPC:
    """shard.worker faults arm in the child and cross IPC intact."""

    def test_injected_fault_pickles_with_attributes(self):
        fault = InjectedFault(POINT_SHARD_WORKER, key="2")
        clone = pickle.loads(pickle.dumps(fault))
        assert isinstance(clone, InjectedFault)
        assert (clone.point, clone.key) == (POINT_SHARD_WORKER, "2")

    def test_worker_rules_ship_at_spawn_strict_mode_propagates(
        self, corpus_dir
    ):
        # Rules are snapshotted when the pool (re)spawns, so activate the
        # injector *before* the first probe; strict mode (no health
        # tracker) is all-or-nothing, so the worker-side fault surfaces.
        with injected(
            FaultRule(POINT_SHARD_WORKER, Once(at=1), key="1")
        ):
            corpus = ShardedCorpus.load(
                corpus_dir, probe_workers=2, parallel_mode="process"
            )
            try:
                with pytest.raises(InjectedFault, match="shard.worker"):
                    corpus.search(["country"], limit=5)
            finally:
                corpus.close()


class TestPoolSurface:
    def test_pool_repr_and_workers(self, corpus_dir):
        pool = ProcessScatterPool(corpus_dir, workers=2)
        try:
            assert pool.workers == 2
            assert pool.spawns == 0  # lazy: nothing spawned yet
            assert "ProcessScatterPool" in repr(pool)
            df = pool.document_frequencies(0, ["country"])
            assert set(df) == {"country"}
            assert pool.spawns == 1
        finally:
            pool.close()
