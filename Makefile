# Convenience targets; everything also runs as the plain commands shown.
PYTHONPATH := src

.PHONY: test coverage lint reprolint typecheck check docs docs-coverage \
	bench-incremental bench-shards bench-hotpath bench-exec \
	bench-serving bench-faults bench-parallel

test:
	PYTHONPATH=$(PYTHONPATH) python -m pytest -x -q

# Branch coverage over repro.index + the stdlib gate (tools/coverage_gate:
# package line floor, binfmt.py at 100% branch). Needs `pip install
# pytest-cov` (the `cov` extra; CI's coverage job installs it).
coverage:
	@python -c "import pytest_cov" 2>/dev/null || \
		{ echo "pytest-cov is not installed: pip install pytest-cov"; exit 1; }
	PYTHONPATH=$(PYTHONPATH) python -m pytest -q \
		--cov=repro.index --cov-branch --cov-report=xml --cov-report=term
	python tools/coverage_gate.py coverage.xml

# Lint gate (rule set pinned in pyproject.toml). Needs `pip install ruff`
# (the CI lint job installs it; the runtime itself stays stdlib-only).
lint:
	@command -v ruff >/dev/null 2>&1 || \
		{ echo "ruff is not installed: pip install ruff"; exit 1; }
	ruff check .

# Repo-specific invariant linter (stdlib-only, no install needed).
# Rules + escape-hatch grammar: DESIGN.md, "Static guarantees".
reprolint:
	python -m tools.reprolint

# Strict typing gate. Needs `pip install mypy` (CI installs the pinned
# version from the `typecheck` extra; the runtime stays stdlib-only).
typecheck:
	@command -v mypy >/dev/null 2>&1 || \
		{ echo "mypy is not installed: pip install mypy"; exit 1; }
	mypy --strict src/repro tests/typing

# The full static gate, exactly what CI runs: style+bug lint, strict
# types, and the repo's own invariants.
check: lint typecheck reprolint

# Generated API reference (docs/api/). Needs `pip install pdoc` (CI
# installs it; the runtime itself stays stdlib-only).
docs:
	@python -c "import pdoc" 2>/dev/null || \
		{ echo "pdoc is not installed: pip install pdoc"; exit 1; }
	PYTHONPATH=$(PYTHONPATH) python -m pdoc repro.service repro.index repro.exec repro.serve repro.faults repro.cli -o docs/api
	@echo "API reference written to docs/api/"

# Stdlib-only docstring gate (CI additionally runs interrogate).
docs-coverage:
	python tools/docstring_coverage.py --fail-under 95 -v \
		src/repro/service src/repro/index src/repro/exec src/repro/serve \
		src/repro/faults src/repro/cli.py

bench-incremental:
	PYTHONPATH=$(PYTHONPATH) python benchmarks/bench_incremental.py --smoke

bench-shards:
	PYTHONPATH=$(PYTHONPATH) python benchmarks/bench_shard_scaling.py --smoke

bench-hotpath:
	PYTHONPATH=$(PYTHONPATH) python benchmarks/bench_hotpath.py --smoke

bench-exec:
	PYTHONPATH=$(PYTHONPATH) python benchmarks/bench_exec.py --smoke

bench-serving:
	PYTHONPATH=$(PYTHONPATH) python benchmarks/bench_serving.py --smoke

bench-faults:
	PYTHONPATH=$(PYTHONPATH) python benchmarks/bench_faults.py --smoke

bench-parallel:
	PYTHONPATH=$(PYTHONPATH) python benchmarks/bench_parallel.py --smoke
