# Convenience targets; everything also runs as the plain commands shown.
PYTHONPATH := src

.PHONY: test lint docs docs-coverage bench-incremental bench-shards \
	bench-hotpath bench-exec

test:
	PYTHONPATH=$(PYTHONPATH) python -m pytest -x -q

# Lint gate (rule set pinned in pyproject.toml). Needs `pip install ruff`
# (the CI lint job installs it; the runtime itself stays stdlib-only).
lint:
	@command -v ruff >/dev/null 2>&1 || \
		{ echo "ruff is not installed: pip install ruff"; exit 1; }
	ruff check .

# Generated API reference (docs/api/). Needs `pip install pdoc` (CI
# installs it; the runtime itself stays stdlib-only).
docs:
	@python -c "import pdoc" 2>/dev/null || \
		{ echo "pdoc is not installed: pip install pdoc"; exit 1; }
	PYTHONPATH=$(PYTHONPATH) python -m pdoc repro.service repro.index repro.exec repro.cli -o docs/api
	@echo "API reference written to docs/api/"

# Stdlib-only docstring gate (CI additionally runs interrogate).
docs-coverage:
	python tools/docstring_coverage.py --fail-under 95 -v \
		src/repro/service src/repro/index src/repro/exec src/repro/cli.py

bench-incremental:
	PYTHONPATH=$(PYTHONPATH) python benchmarks/bench_incremental.py --smoke

bench-shards:
	PYTHONPATH=$(PYTHONPATH) python benchmarks/bench_shard_scaling.py --smoke

bench-hotpath:
	PYTHONPATH=$(PYTHONPATH) python benchmarks/bench_hotpath.py --smoke

bench-exec:
	PYTHONPATH=$(PYTHONPATH) python benchmarks/bench_exec.py --smoke
