# Convenience targets; everything also runs as the plain commands shown.
PYTHONPATH := src

.PHONY: test docs docs-coverage bench-incremental bench-shards bench-hotpath

test:
	PYTHONPATH=$(PYTHONPATH) python -m pytest -x -q

# Generated API reference (docs/api/). Needs `pip install pdoc` (CI
# installs it; the runtime itself stays stdlib-only).
docs:
	@python -c "import pdoc" 2>/dev/null || \
		{ echo "pdoc is not installed: pip install pdoc"; exit 1; }
	PYTHONPATH=$(PYTHONPATH) python -m pdoc repro.service repro.index repro.cli -o docs/api
	@echo "API reference written to docs/api/"

# Stdlib-only docstring gate (CI additionally runs interrogate).
docs-coverage:
	python tools/docstring_coverage.py --fail-under 95 -v \
		src/repro/service src/repro/index src/repro/cli.py

bench-incremental:
	PYTHONPATH=$(PYTHONPATH) python benchmarks/bench_incremental.py --smoke

bench-shards:
	PYTHONPATH=$(PYTHONPATH) python benchmarks/bench_shard_scaling.py --smoke

bench-hotpath:
	PYTHONPATH=$(PYTHONPATH) python benchmarks/bench_hotpath.py --smoke
